package analysis

import (
	"ovhweather/internal/stats"
	"ovhweather/internal/wmap"
)

// HourlyLoadView is the Figure 5a result: per hour of day, the summary of
// the link-load distribution (median, quartiles, 1st/99th percentile
// whiskers).
type HourlyLoadView struct {
	Hours   [24]stats.Quartiles
	Samples [24]int
}

// HourlyLoads consumes a stream and groups every link load (both
// directions, all links) by the snapshot's hour of day.
func HourlyLoads(src Stream) (*HourlyLoadView, error) {
	groups := stats.NewGroupedSample()
	err := src(func(m *wmap.Map) error {
		h := m.Time.Hour()
		for _, l := range m.Links {
			groups.Add(h, float64(l.LoadAB))
			groups.Add(h, float64(l.LoadBA))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	view := &HourlyLoadView{}
	for h := 0; h < 24; h++ {
		g := groups.Group(h)
		if g == nil {
			continue
		}
		q, err := g.Quartiles()
		if err != nil {
			return nil, err
		}
		view.Hours[h] = q
		view.Samples[h] = g.Len()
	}
	return view, nil
}

// PeakHour returns the hour with the highest median load.
func (v *HourlyLoadView) PeakHour() int {
	best, bestV := 0, -1.0
	for h, q := range v.Hours {
		if v.Samples[h] > 0 && q.Median > bestV {
			best, bestV = h, q.Median
		}
	}
	return best
}

// TroughHour returns the hour with the lowest median load.
func (v *HourlyLoadView) TroughHour() int {
	best, bestV := 0, 1e18
	for h, q := range v.Hours {
		if v.Samples[h] > 0 && q.Median < bestV {
			best, bestV = h, q.Median
		}
	}
	return best
}

// LoadDistView is the Figure 5b result: the load CDFs of all, internal and
// external links with the paper's headline statistics.
type LoadDistView struct {
	All, Internal, External []stats.DistPoint
	P75All                  float64
	FracOver60              float64
	MeanInternal            float64
	MeanExternal            float64
	Samples                 int
}

// LoadCDF consumes a stream and computes the Figure 5b distributions over
// every directed load observation.
func LoadCDF(src Stream) (*LoadDistView, error) {
	all := stats.NewSample()
	internal := stats.NewSample()
	external := stats.NewSample()
	err := src(func(m *wmap.Map) error {
		for _, l := range m.Links {
			a, b := float64(l.LoadAB), float64(l.LoadBA)
			all.Add(a, b)
			if l.Internal() {
				internal.Add(a, b)
			} else {
				external.Add(a, b)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	view := &LoadDistView{Samples: all.Len()}
	var cdfErr error
	if view.All, cdfErr = all.CDF(); cdfErr != nil {
		return nil, cdfErr
	}
	if internal.Len() > 0 {
		view.Internal, _ = internal.CDF()
		view.MeanInternal, _ = internal.Mean()
	}
	if external.Len() > 0 {
		view.External, _ = external.CDF()
		view.MeanExternal, _ = external.Mean()
	}
	view.P75All, _ = all.Percentile(75)
	view.FracOver60, _ = all.FractionGreater(60)
	return view, nil
}

// ImbalanceView is the Figure 5c result: the CDFs of parallel-link load
// imbalance for internal and external directed sets, plus the paper's
// headline fractions.
type ImbalanceView struct {
	Internal, External []stats.DistPoint
	IntSets, ExtSets   int
	IntWithin1         float64 // fraction of internal imbalances <= 1 %
	ExtWithin2         float64 // fraction of external imbalances <= 2 %
	MeanParallelism    float64 // average parallel links per group (last map)
}

// ImbalanceCDF consumes a stream and computes the Figure 5c view using the
// given filters (use wmap.PaperImbalanceOptions for the paper's).
func ImbalanceCDF(src Stream, opt wmap.ImbalanceOptions) (*ImbalanceView, error) {
	internal := stats.NewSample()
	external := stats.NewSample()
	var lastParallelism float64
	err := src(func(m *wmap.Map) error {
		for _, im := range m.Imbalances(opt) {
			if im.Internal {
				internal.Add(float64(im.Spread))
			} else {
				external.Add(float64(im.Spread))
			}
		}
		lastParallelism = m.MeanParallelism()
		return nil
	})
	if err != nil {
		return nil, err
	}
	view := &ImbalanceView{
		IntSets:         internal.Len(),
		ExtSets:         external.Len(),
		MeanParallelism: lastParallelism,
	}
	if internal.Len() > 0 {
		view.Internal, _ = internal.CDF()
		view.IntWithin1, _ = internal.FractionAtMost(1)
	}
	if external.Len() > 0 {
		view.External, _ = external.CDF()
		view.ExtWithin2, _ = external.FractionAtMost(2)
	}
	return view, nil
}
