package analysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ovhweather/internal/netsim"
	"ovhweather/internal/peeringdb"
	"ovhweather/internal/routing"
	"ovhweather/internal/stats"
	"ovhweather/internal/status"
	"ovhweather/internal/wmap"
)

// simStream samples the default scenario for one map between two times.
func simStream(t *testing.T, id wmap.MapID, from, to time.Time, step time.Duration) Stream {
	t.Helper()
	sim, err := netsim.New(netsim.DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	return func(yield func(*wmap.Map) error) error {
		for at := from; !at.After(to); at = at.Add(step) {
			m, err := sim.MapAt(id, at)
			if err != nil {
				return err
			}
			if err := yield(m); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestInfrastructureSeries(t *testing.T) {
	sc := netsim.DefaultScenario()
	src := simStream(t, wmap.Europe, sc.Start, sc.End, 7*24*time.Hour)
	infra, err := Infrastructure(src)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := infra.Routers.First()
	last, _ := infra.Routers.Last()
	if first.V != 111 || last.V != 113 {
		t.Errorf("router series %v -> %v, want 111 -> 113", first.V, last.V)
	}
	lastInt, _ := infra.Internal.Last()
	if lastInt.V != 744 {
		t.Errorf("internal end = %v, want 744", lastInt.V)
	}
	lastExt, _ := infra.External.Last()
	if lastExt.V != 265 {
		t.Errorf("external end = %v, want 265", lastExt.V)
	}

	events := infra.RouterEvents(3)
	if len(events) < 4 {
		t.Errorf("router events = %+v, want the add/remove/dip/restore sequence", events)
	}
	var sawBigStep bool
	for _, e := range infra.InternalSteps(30) {
		if e.Delta >= 30 {
			sawBigStep = true
		}
	}
	if !sawBigStep {
		t.Error("missing the November 2021 internal step")
	}
}

func TestDegreeCCDF(t *testing.T) {
	sc := netsim.DefaultScenario()
	var last *wmap.Map
	src := simStream(t, wmap.Europe, sc.End, sc.End, time.Hour)
	if err := src(func(m *wmap.Map) error { last = m; return nil }); err != nil {
		t.Fatal(err)
	}
	v, err := DegreeCCDF(last)
	if err != nil {
		t.Fatal(err)
	}
	if v.Routers != 113 {
		t.Errorf("routers = %d", v.Routers)
	}
	if v.FracDegree1 <= 0.20 || v.FracOver20 <= 0.20 {
		t.Errorf("degree fractions = %.2f / %.2f, want both > 0.20", v.FracDegree1, v.FracOver20)
	}
	// CCDF is non-increasing.
	for i := 1; i < len(v.CCDF); i++ {
		if v.CCDF[i].Fraction > v.CCDF[i-1].Fraction {
			t.Fatal("CCDF increases")
		}
	}
	if _, err := DegreeCCDF(&wmap.Map{}); err == nil {
		t.Error("empty map should error")
	}
}

func TestTable1(t *testing.T) {
	sim, err := netsim.New(netsim.DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	maps, err := sim.SnapshotAt(netsim.DefaultScenario().End)
	if err != nil {
		t.Fatal(err)
	}
	rows, total := Table1(maps)
	if len(rows) != 4 || total.Routers != 181 || total.External != 518 {
		t.Errorf("rows=%d total=%+v", len(rows), total)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows, total); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Europe", "113", "744", "265", "Total", "181", "518"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestHourlyLoads(t *testing.T) {
	sc := netsim.DefaultScenario()
	from := sc.Start.AddDate(0, 6, 0)
	src := simStream(t, wmap.Europe, from, from.AddDate(0, 0, 2), time.Hour)
	v, err := HourlyLoads(src)
	if err != nil {
		t.Fatal(err)
	}
	trough, peak := v.TroughHour(), v.PeakHour()
	if trough < 1 || trough > 5 {
		t.Errorf("trough hour = %d, want night (paper: 2-4 a.m.)", trough)
	}
	if peak < 18 || peak > 22 {
		t.Errorf("peak hour = %d, want evening (paper: 7-9 p.m.)", peak)
	}
	// Variance grows with load: the p75-p25 spread at the peak exceeds the
	// trough's.
	spreadPeak := v.Hours[peak].P75 - v.Hours[peak].P25
	spreadTrough := v.Hours[trough].P75 - v.Hours[trough].P25
	if spreadPeak <= spreadTrough {
		t.Errorf("spread peak %.1f <= trough %.1f; paper reports variance rising with load", spreadPeak, spreadTrough)
	}
	var buf bytes.Buffer
	WriteHourlyLoads(&buf, v)
	if !strings.Contains(buf.String(), "peak hour") {
		t.Error("report missing peak hour")
	}
}

func TestLoadCDFShape(t *testing.T) {
	sc := netsim.DefaultScenario()
	from := sc.Start.AddDate(0, 9, 0)
	src := simStream(t, wmap.Europe, from, from.AddDate(0, 0, 3), 3*time.Hour)
	v, err := LoadCDF(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.P75All >= 33 {
		t.Errorf("p75 = %.1f, want < 33", v.P75All)
	}
	if v.FracOver60 > 0.03 {
		t.Errorf("frac > 60 = %.3f", v.FracOver60)
	}
	if v.MeanExternal >= v.MeanInternal {
		t.Errorf("external mean %.1f >= internal %.1f", v.MeanExternal, v.MeanInternal)
	}
	var buf bytes.Buffer
	WriteLoadCDF(&buf, v)
	if !strings.Contains(buf.String(), "p75") {
		t.Error("report missing p75")
	}
}

func TestImbalanceCDFShape(t *testing.T) {
	sc := netsim.DefaultScenario()
	from := sc.Start.AddDate(0, 3, 0)
	src := simStream(t, wmap.Europe, from, from.AddDate(0, 0, 1), 6*time.Hour)
	v, err := ImbalanceCDF(src, wmap.PaperImbalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v.IntSets == 0 || v.ExtSets == 0 {
		t.Fatalf("no sets: %+v", v)
	}
	if v.IntWithin1 <= 0.60 {
		t.Errorf("internal within 1%% = %.2f, want > 0.60", v.IntWithin1)
	}
	if v.ExtWithin2 <= 0.90 {
		t.Errorf("external within 2%% = %.2f, want > 0.90", v.ExtWithin2)
	}
	if v.MeanParallelism <= 1 {
		t.Errorf("mean parallelism = %.2f", v.MeanParallelism)
	}
	var buf bytes.Buffer
	WriteImbalance(&buf, v)
	if !strings.Contains(buf.String(), "imbalance") {
		t.Error("report missing imbalance")
	}
}

func TestUpgradeStudyDetectsABC(t *testing.T) {
	sc := netsim.DefaultScenario()
	from := sc.Upgrade.Added.AddDate(0, 0, -10)
	to := sc.Upgrade.Activated.AddDate(0, 0, 10)
	src := simStream(t, wmap.Europe, from, to, 6*time.Hour)

	db := peeringdb.New()
	db.Announce(peeringdb.Record{Peering: sc.Upgrade.Peering, Network: "OVH", Gbps: sc.Upgrade.GbpsBefore, Updated: sc.Start})
	db.Announce(peeringdb.Record{Peering: sc.Upgrade.Peering, Network: "OVH", Gbps: sc.Upgrade.GbpsAfter, Updated: sc.Upgrade.DBUpdated, Comment: "new 100G"})

	v, err := UpgradeStudy(src, sc.Upgrade.Peering, db)
	if err != nil {
		t.Fatal(err)
	}
	if v.Added.IsZero() {
		t.Fatal("arrow A not detected")
	}
	if dayDiff(v.Added, sc.Upgrade.Added) > 1 {
		t.Errorf("A detected at %s, scenario %s", v.Added, sc.Upgrade.Added)
	}
	if v.Activated.IsZero() {
		t.Fatal("arrow C not detected")
	}
	if dayDiff(v.Activated, sc.Upgrade.Activated) > 1 {
		t.Errorf("C detected at %s, scenario %s", v.Activated, sc.Upgrade.Activated)
	}
	if v.DBUpdate == nil {
		t.Fatal("arrow B not found in database")
	}
	if v.DBUpdate.GbpsBefore != 400 || v.DBUpdate.GbpsAfter != 500 {
		t.Errorf("B = %+v", v.DBUpdate)
	}
	if !v.CapacityOK {
		t.Errorf("capacity cross-check failed: drop %.2f vs announced %.2f", v.DropRatio(), v.AnnouncedRatio())
	}
	if len(v.Series) != 5 {
		t.Errorf("series = %d, want 5 parallel links", len(v.Series))
	}
	var buf bytes.Buffer
	WriteUpgrade(&buf, v)
	for _, want := range []string{"A: link added", "B: PeeringDB update", "C: link activated"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestUpgradeStudyNoPeering(t *testing.T) {
	src := SliceStream(nil)
	if _, err := UpgradeStudy(src, "NOPE-IX", nil); err == nil {
		t.Error("missing peering should error")
	}
}

func dayDiff(a, b time.Time) int {
	d := a.Sub(b)
	if d < 0 {
		d = -d
	}
	return int(d.Hours() / 24)
}

func TestSliceStream(t *testing.T) {
	maps := []*wmap.Map{{ID: wmap.Europe}, {ID: wmap.World}}
	var seen int
	err := SliceStream(maps)(func(m *wmap.Map) error {
		seen++
		return nil
	})
	if err != nil || seen != 2 {
		t.Errorf("seen = %d, err = %v", seen, err)
	}
}

func TestSampleDist(t *testing.T) {
	var in []stats.DistPoint
	for i := 0; i < 100; i++ {
		in = append(in, stats.DistPoint{Value: float64(i), Fraction: float64(i) / 99})
	}
	out := sampleDist(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != in[0] || out[9] != in[99] {
		t.Error("sampleDist must keep endpoints")
	}
	if got := sampleDist(in[:5], 10); len(got) != 5 {
		t.Errorf("short input should pass through, got %d", len(got))
	}
}

func TestCorrelateMaintenance(t *testing.T) {
	sc := netsim.DefaultScenario()
	src := simStream(t, wmap.Europe, sc.Start, sc.End, 7*24*time.Hour)
	infra, err := Infrastructure(src)
	if err != nil {
		t.Fatal(err)
	}
	feed := status.FromScenario(sc)
	corr := CorrelateMaintenance(infra, feed, 3, 8*24*time.Hour)
	if len(corr.Matches) < 4 {
		t.Fatalf("matches = %d", len(corr.Matches))
	}
	if corr.Unexplained != 0 {
		var buf bytes.Buffer
		WriteMaintenance(&buf, corr)
		t.Errorf("all scripted router changes should be explained by the feed:\n%s", buf.String())
	}
	var buf bytes.Buffer
	WriteMaintenance(&buf, corr)
	if !strings.Contains(buf.String(), "explained") {
		t.Error("report missing summary")
	}
}

func TestCorrelateMaintenanceUnexplained(t *testing.T) {
	sc := netsim.DefaultScenario()
	src := simStream(t, wmap.Europe, sc.Start, sc.End, 7*24*time.Hour)
	infra, err := Infrastructure(src)
	if err != nil {
		t.Fatal(err)
	}
	empty := status.NewFeed()
	corr := CorrelateMaintenance(infra, empty, 3, time.Hour)
	if corr.Explained != 0 || corr.Unexplained == 0 {
		t.Errorf("empty feed should explain nothing: %+v", corr)
	}
}

func TestSiteOf(t *testing.T) {
	cases := map[string]string{
		"fra-fr5-pb6-nc5": "fra",
		"rbx-g1":          "rbx",
		"standalone":      "standalone",
	}
	for in, want := range cases {
		if got := SiteOf(in); got != want {
			t.Errorf("SiteOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSiteGrowthStudy(t *testing.T) {
	first := &wmap.Map{
		ID: wmap.Europe,
		Nodes: []wmap.Node{
			{Name: "fra-r1", Kind: wmap.Router},
			{Name: "rbx-r1", Kind: wmap.Router},
		},
		Links: []wmap.Link{{A: "fra-r1", B: "rbx-r1", LoadAB: 1, LoadBA: 1}},
	}
	last := first.Clone()
	last.Nodes = append(last.Nodes, wmap.Node{Name: "fra-r2", Kind: wmap.Router})
	last.Links = append(last.Links, wmap.Link{A: "fra-r2", B: "rbx-r1", LoadAB: 1, LoadBA: 1})

	v, err := SiteGrowthStudy(SliceStream([]*wmap.Map{first, last}))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Ranked) != 2 {
		t.Fatalf("ranked = %+v", v.Ranked)
	}
	top := v.Ranked[0]
	if top.Site != "fra" || top.RouterDelta != 1 || top.RoutersBefore != 1 || top.RoutersAfter != 2 {
		t.Errorf("top = %+v", top)
	}
	// rbx gained a link endpoint but no router.
	if v.Ranked[1].Site != "rbx" || v.Ranked[1].RouterDelta != 0 || v.Ranked[1].LinkDelta != 1 {
		t.Errorf("rbx = %+v", v.Ranked[1])
	}
	var buf bytes.Buffer
	WriteSiteGrowth(&buf, v, 5)
	if !strings.Contains(buf.String(), "fra") {
		t.Error("report missing site")
	}
	if _, err := SiteGrowthStudy(SliceStream(nil)); err == nil {
		t.Error("empty stream should error")
	}
}

func TestSiteGrowthOnScenario(t *testing.T) {
	sc := netsim.DefaultScenario()
	src := simStream(t, wmap.Europe, sc.Start, sc.End, 60*24*time.Hour)
	v, err := SiteGrowthStudy(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Ranked) < 10 {
		t.Errorf("sites = %d, expected many Europe sites", len(v.Ranked))
	}
	var grew int
	for _, g := range v.Ranked {
		if g.RouterDelta > 0 || g.LinkDelta > 0 {
			grew++
		}
	}
	if grew == 0 {
		t.Error("no growing site over two years of expansion")
	}
}

func TestCongestionStudy(t *testing.T) {
	hot := &wmap.Map{
		ID: wmap.Europe,
		Nodes: []wmap.Node{
			{Name: "a-r1", Kind: wmap.Router},
			{Name: "b-r1", Kind: wmap.Router},
		},
		Links: []wmap.Link{
			{A: "a-r1", B: "b-r1", LabelA: "#1", LabelB: "#1", LoadAB: 80, LoadBA: 10},
			{A: "a-r1", B: "b-r1", LabelA: "#2", LabelB: "#2", LoadAB: 20, LoadBA: 10},
		},
	}
	cool := hot.Clone()
	cool.Links[0].LoadAB = 30

	v, err := CongestionStudy(SliceStream([]*wmap.Map{hot, hot, hot, cool}), DefaultCongestionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v.Snapshots != 4 || v.Observations != 16 {
		t.Fatalf("view = %+v", v)
	}
	if v.HotReadings != 3 {
		t.Errorf("hot readings = %d, want 3", v.HotReadings)
	}
	if len(v.Persistent) != 1 {
		t.Fatalf("persistent = %+v", v.Persistent)
	}
	p := v.Persistent[0]
	if p.From != "a-r1" || p.To != "b-r1" || p.Ordinal != 0 || p.HotShare != 0.75 || p.PeakLoad != 80 {
		t.Errorf("persistent link = %+v", p)
	}
	var buf bytes.Buffer
	WriteCongestion(&buf, v)
	if !strings.Contains(buf.String(), "persistently congested") {
		t.Error("report missing headline")
	}
	if _, err := CongestionStudy(SliceStream(nil), DefaultCongestionOptions()); err == nil {
		t.Error("empty stream should error")
	}
}

func TestCongestionOnScenarioIsOccasional(t *testing.T) {
	sc := netsim.DefaultScenario()
	from := sc.Start.AddDate(0, 4, 0)
	src := simStream(t, wmap.Europe, from, from.AddDate(0, 0, 2), 4*time.Hour)
	v, err := CongestionStudy(src, DefaultCongestionOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper: congestion "happens occasionally" — a thin tail, not a
	// network-wide condition.
	if v.HotFraction > 0.05 {
		t.Errorf("hot fraction = %.3f, want occasional", v.HotFraction)
	}
	if got := float64(len(v.Persistent)); got > 40 {
		t.Errorf("persistent links = %v, want a small hot set", got)
	}
}

func TestWeeklyLoads(t *testing.T) {
	sc := netsim.DefaultScenario()
	from := sc.Start.AddDate(0, 5, 0)
	src := simStream(t, wmap.Europe, from, from.AddDate(0, 0, 14), 6*time.Hour)
	v, err := WeeklyLoads(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.WeekendMean >= v.WeekdayMean {
		t.Errorf("weekend mean %.1f >= weekday mean %.1f; backbone traffic should dip on weekends",
			v.WeekendMean, v.WeekdayMean)
	}
	for d := 0; d < 7; d++ {
		if v.Samples[d] == 0 {
			t.Errorf("day %d has no samples over two weeks", d)
		}
	}
	var buf bytes.Buffer
	WriteWeekly(&buf, v)
	if !strings.Contains(buf.String(), "Weekly pattern") {
		t.Error("report missing headline")
	}
	if _, err := WeeklyLoads(SliceStream(nil)); err == nil {
		t.Error("empty stream should error")
	}
}

func TestChurnStudy(t *testing.T) {
	// A window containing the October 2020 decommission: four named routers
	// must show up as removed.
	from := time.Date(2020, time.September, 28, 12, 0, 0, 0, time.UTC)
	to := time.Date(2020, time.October, 6, 12, 0, 0, 0, time.UTC)
	src := simStream(t, wmap.Europe, from, to, 24*time.Hour)
	v, err := ChurnStudy(src)
	if err != nil {
		t.Fatal(err)
	}
	// The window holds the October 2 decommission and the October 3 monthly
	// peering addition; the decommission event must name 4 routers.
	var decom *ChurnEvent
	for i := range v.Events {
		if len(v.Events[i].Diff.NodesRemoved) > 0 {
			decom = &v.Events[i]
		}
	}
	if decom == nil {
		t.Fatalf("no removal event found in %+v", v.Events)
	}
	if len(decom.Diff.NodesRemoved) != 4 {
		t.Errorf("removed = %+v, want the 4 decommissioned routers", decom.Diff.NodesRemoved)
	}
	for _, n := range decom.Diff.NodesRemoved {
		if n.Kind != wmap.Router {
			t.Errorf("removed node %s is a %s", n.Name, n.Kind)
		}
	}
	var buf bytes.Buffer
	WriteChurn(&buf, v)
	if !strings.Contains(buf.String(), "change point") {
		t.Error("report missing headline")
	}
	if _, err := ChurnStudy(SliceStream(nil)); err == nil {
		t.Error("empty stream should error")
	}
}

func TestPathStabilityStudy(t *testing.T) {
	// A stable window, then the October 2020 decommission: any reroute in
	// the change interval must be flagged as topology-correlated.
	from := time.Date(2020, time.September, 25, 12, 0, 0, 0, time.UTC)
	to := time.Date(2020, time.October, 8, 12, 0, 0, 0, time.UTC)
	src := simStream(t, wmap.Europe, from, to, 24*time.Hour)

	// Pick two stable core routers from the first snapshot.
	var first *wmap.Map
	if err := simStream(t, wmap.Europe, from, from, time.Hour)(func(m *wmap.Map) error {
		first = m
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	g := routing.NewGraph(first)
	routers := g.Routers()
	pairs := [][2]string{
		{routers[0], routers[len(routers)/2]},
		{routers[1], routers[len(routers)-1]},
		{routers[2], routers[len(routers)/3]},
	}
	v, err := PathStabilityStudy(src, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Snapshots != 14 {
		t.Errorf("snapshots = %d", v.Snapshots)
	}
	if v.Traces == 0 {
		t.Fatal("no traces")
	}
	for _, c := range v.Changes {
		if !c.TopoChange {
			// Paths only change when topology does on a deterministic
			// shortest-path trace. Note: the monthly external event does
			// not affect internal routing but IS a topology change, so the
			// converse does not hold.
			t.Errorf("reroute without topology change: %+v", c)
		}
	}
	var buf bytes.Buffer
	WritePathStability(&buf, v)
	if !strings.Contains(buf.String(), "Path stability") {
		t.Error("report missing headline")
	}
	if _, err := PathStabilityStudy(src, nil); err == nil {
		t.Error("no pairs should error")
	}
}
