package analysis

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"ovhweather/internal/routing"
	"ovhweather/internal/wmap"
)

// Path-stability analysis: the paper's Discussion proposes correlating
// traceroute measurements "with the evolution of routing and link loads".
// This study runs synthetic traceroutes between fixed router pairs across
// the stream and reports when their paths change — which, on a healthy
// backbone, happens exactly when the topology does.

// PathChange is one observed reroute.
type PathChange struct {
	From, To   time.Time
	Src, Dst   string
	OldPath    routing.Path
	NewPath    routing.Path
	TopoChange bool // the same interval also changed the topology
}

// PathStabilityView summarizes the study.
type PathStabilityView struct {
	Pairs      int
	Snapshots  int
	Traces     int
	Changes    []PathChange
	Correlated int // changes coinciding with a topology change
}

// PathStabilityStudy traces the given router pairs on every snapshot.
// Pairs whose routers are absent from a snapshot are skipped for that
// snapshot (routers come and go across two years).
func PathStabilityStudy(src Stream, pairs [][2]string) (*PathStabilityView, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("analysis: no router pairs to trace")
	}
	view := &PathStabilityView{Pairs: len(pairs)}
	prevPaths := make(map[[2]string]routing.Path)
	var prevMap *wmap.Map
	var prevTime time.Time

	err := src(func(m *wmap.Map) error {
		view.Snapshots++
		g := routing.NewGraph(m)
		topoChanged := false
		if prevMap != nil {
			topoChanged = !wmap.Compare(prevMap, m).Empty()
		}
		for _, pair := range pairs {
			p, err := g.Trace(pair[0], pair[1])
			if err != nil {
				continue // pair absent or disconnected in this snapshot
			}
			view.Traces++
			if old, ok := prevPaths[pair]; ok && !reflect.DeepEqual(old, p) {
				ch := PathChange{
					From: prevTime, To: m.Time,
					Src: pair[0], Dst: pair[1],
					OldPath: old, NewPath: p,
					TopoChange: topoChanged,
				}
				view.Changes = append(view.Changes, ch)
				if topoChanged {
					view.Correlated++
				}
			}
			prevPaths[pair] = p
		}
		prevMap = m
		prevTime = m.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	if view.Snapshots == 0 {
		return nil, fmt.Errorf("analysis: empty stream")
	}
	return view, nil
}

// WritePathStability renders the study.
func WritePathStability(w io.Writer, v *PathStabilityView) {
	fmt.Fprintf(w, "Path stability — %d pairs, %d traces over %d snapshots: %d reroute(s), %d correlated with topology changes\n",
		v.Pairs, v.Traces, v.Snapshots, len(v.Changes), v.Correlated)
	for i, c := range v.Changes {
		if i >= 8 {
			fmt.Fprintf(w, "  ... and %d more\n", len(v.Changes)-i)
			break
		}
		tag := "no topology change (load-only window)"
		if c.TopoChange {
			tag = "topology changed in the same interval"
		}
		fmt.Fprintf(w, "  %s: %s -> %s rerouted (%d -> %d hops; %s)\n",
			c.To.Format("2006-01-02"), c.Src, c.Dst, c.OldPath.Hops(), c.NewPath.Hops(), tag)
	}
}
