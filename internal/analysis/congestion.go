package analysis

import (
	"fmt"
	"io"
	"sort"

	"ovhweather/internal/events"
	"ovhweather/internal/wmap"
)

// Congestion analysis: the paper observes that "congestion inside the
// network happens occasionally" (Figure 5b's thin tail above 60 %) and its
// Discussion points at persistent interdomain congestion inference as the
// natural follow-up. This view finds the links that run hot repeatedly, not
// just in one snapshot.

// CongestionOptions tunes the detector.
type CongestionOptions struct {
	// Threshold is the load (%) above which a direction counts as congested
	// in one snapshot.
	Threshold wmap.Load
	// PersistFraction is the minimum fraction of observed snapshots a link
	// direction must exceed the threshold in to be reported as persistently
	// congested.
	PersistFraction float64
}

// DefaultCongestionOptions flags directions above 60 % (the paper's "very
// few loads exceed 60 %") in at least a quarter of their snapshots.
func DefaultCongestionOptions() CongestionOptions {
	return CongestionOptions{Threshold: 60, PersistFraction: 0.25}
}

// CongestedLink is one persistently hot link direction.
type CongestedLink struct {
	From, To  string
	Label     string
	Ordinal   int     // position among the parallels from this endpoint
	HotShare  float64 // fraction of snapshots above threshold
	PeakLoad  wmap.Load
	Snapshots int
}

// CongestionView is the detector's output.
type CongestionView struct {
	Options      CongestionOptions
	Snapshots    int
	Observations int     // directed load readings examined
	HotReadings  int     // readings above threshold
	HotFraction  float64 // HotReadings / Observations
	Persistent   []CongestedLink
}

// CongestionStudy consumes a stream and reports occasional congestion
// (fraction of hot readings, Figure 5b's tail) and the links that are hot
// persistently. Direction enumeration and parallel-ordinal assignment are
// events.EachDirection — the same walk the live congestion detector runs,
// so offline and live agree on which physical direction is which.
func CongestionStudy(src Stream, opt CongestionOptions) (*CongestionView, error) {
	type acc struct {
		hot, seen int
		peak      wmap.Load
	}
	counts := make(map[events.DirKey]*acc)
	view := &CongestionView{Options: opt}

	err := src(func(m *wmap.Map) error {
		view.Snapshots++
		events.EachDirection(m, func(dir events.Direction) {
			a := counts[dir.Key()]
			if a == nil {
				a = &acc{}
				counts[dir.Key()] = a
			}
			a.seen++
			view.Observations++
			if dir.Load >= opt.Threshold {
				a.hot++
				view.HotReadings++
			}
			if dir.Load > a.peak {
				a.peak = dir.Load
			}
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if view.Observations == 0 {
		return nil, fmt.Errorf("analysis: no load observations in the stream")
	}
	view.HotFraction = float64(view.HotReadings) / float64(view.Observations)

	for key, a := range counts {
		share := float64(a.hot) / float64(a.seen)
		if share < opt.PersistFraction {
			continue
		}
		view.Persistent = append(view.Persistent, CongestedLink{
			From: key.From, To: key.To, Label: key.Label, Ordinal: key.Ordinal,
			HotShare: share, PeakLoad: a.peak, Snapshots: a.seen,
		})
	}
	sort.Slice(view.Persistent, func(i, j int) bool {
		a, b := view.Persistent[i], view.Persistent[j]
		if a.HotShare != b.HotShare {
			return a.HotShare > b.HotShare
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Ordinal < b.Ordinal
	})
	return view, nil
}

// WriteCongestion renders the congestion view.
func WriteCongestion(w io.Writer, v *CongestionView) {
	fmt.Fprintf(w, "Congestion (threshold %d%%): %.2f%% of %d readings hot across %d snapshots\n",
		int(v.Options.Threshold), 100*v.HotFraction, v.Observations, v.Snapshots)
	if len(v.Persistent) == 0 {
		fmt.Fprintln(w, "  no persistently congested link (occasional congestion only, as the paper observes)")
		return
	}
	fmt.Fprintf(w, "  %d persistently congested direction(s):\n", len(v.Persistent))
	for i, c := range v.Persistent {
		if i >= 10 {
			fmt.Fprintf(w, "  ... and %d more\n", len(v.Persistent)-i)
			break
		}
		fmt.Fprintf(w, "  %s -> %s %s (parallel %d): hot in %.0f%% of snapshots, peak %s\n",
			c.From, c.To, c.Label, c.Ordinal+1, 100*c.HotShare, c.PeakLoad)
	}
}
