// Package status models the provider's network-status website — the
// maintenance and incident feed the paper's Discussion proposes as an
// augmentation of the weather-map dataset ("OVH also reports planned
// maintenance events and the failures happening in their network in a
// dedicated website. These events could give insights on the purpose of
// some modifications of their network").
//
// The feed pairs naturally with the Figure 4a analysis: a router-count dip
// that coincides with a published maintenance window is planned work, while
// an unexplained dip suggests a failure.
package status

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Kind classifies a status event.
type Kind string

// Event kinds, mirroring the categories of provider status pages.
const (
	Maintenance Kind = "maintenance" // planned work with an announced window
	Incident    Kind = "incident"    // unplanned failure
	Upgrade     Kind = "upgrade"     // capacity or hardware upgrade
)

// Event is one entry of the status feed.
type Event struct {
	ID          string    `json:"id"`
	Kind        Kind      `json:"kind"`
	Start       time.Time `json:"start"`
	End         time.Time `json:"end,omitempty"` // zero when still open
	Scope       string    `json:"scope"`         // map or region affected
	Description string    `json:"description"`
}

// Open reports whether the event has no announced end.
func (e Event) Open() bool { return e.End.IsZero() }

// Covers reports whether t falls inside the event's window. Open events
// cover everything after their start.
func (e Event) Covers(t time.Time) bool {
	if t.Before(e.Start) {
		return false
	}
	return e.Open() || !t.After(e.End)
}

// Feed is an ordered collection of status events.
type Feed struct {
	events []Event
}

// NewFeed returns a feed seeded with the given events, sorted by start.
func NewFeed(events ...Event) *Feed {
	f := &Feed{events: append([]Event(nil), events...)}
	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].Start.Before(f.events[j].Start) })
	return f
}

// Add appends an event, keeping start order.
func (f *Feed) Add(e Event) {
	f.events = append(f.events, e)
	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].Start.Before(f.events[j].Start) })
}

// Len returns the number of events.
func (f *Feed) Len() int { return len(f.events) }

// Events returns all events in start order. The slice is a copy.
func (f *Feed) Events() []Event { return append([]Event(nil), f.events...) }

// At returns the events whose window covers t.
func (f *Feed) At(t time.Time) []Event {
	var out []Event
	for _, e := range f.events {
		if e.Covers(t) {
			out = append(out, e)
		}
	}
	return out
}

// Between returns the events overlapping the window [from, to].
func (f *Feed) Between(from, to time.Time) []Event {
	var out []Event
	for _, e := range f.events {
		if e.Start.After(to) {
			continue
		}
		if !e.Open() && e.End.Before(from) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Explains returns the first event of the given kind whose window covers t
// (with a tolerance before the start and after the end, since map changes
// and status posts are never perfectly synchronized), or nil.
func (f *Feed) Explains(t time.Time, kind Kind, slack time.Duration) *Event {
	for i := range f.events {
		e := &f.events[i]
		if kind != "" && e.Kind != kind {
			continue
		}
		start := e.Start.Add(-slack)
		if t.Before(start) {
			continue
		}
		if e.Open() || !t.After(e.End.Add(slack)) {
			return e
		}
	}
	return nil
}

// WriteJSON serializes the feed.
func (f *Feed) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.events)
}

// ReadJSON loads a feed serialized by WriteJSON.
func ReadJSON(r io.Reader) (*Feed, error) {
	var events []Event
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("status: %w", err)
	}
	for i, e := range events {
		if e.ID == "" || e.Start.IsZero() {
			return nil, fmt.Errorf("status: event %d missing id or start", i)
		}
	}
	return NewFeed(events...), nil
}
