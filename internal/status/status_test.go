package status

import (
	"bytes"
	"testing"
	"time"

	"ovhweather/internal/netsim"
)

func at(d, h int) time.Time {
	return time.Date(2021, 8, d, h, 0, 0, 0, time.UTC)
}

func sampleFeed() *Feed {
	return NewFeed(
		Event{ID: "M1", Kind: Maintenance, Start: at(9, 0), End: at(23, 0), Scope: "europe", Description: "window"},
		Event{ID: "U1", Kind: Upgrade, Start: at(2, 0), End: at(2, 12), Scope: "europe", Description: "new routers"},
		Event{ID: "I1", Kind: Incident, Start: at(15, 3), Scope: "europe", Description: "fiber cut"},
	)
}

func TestFeedOrderingAndAccessors(t *testing.T) {
	f := sampleFeed()
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	evs := f.Events()
	if evs[0].ID != "U1" || evs[1].ID != "M1" || evs[2].ID != "I1" {
		t.Errorf("order = %v, %v, %v", evs[0].ID, evs[1].ID, evs[2].ID)
	}
	// Events() returns a copy.
	evs[0].ID = "mutated"
	if f.Events()[0].ID != "U1" {
		t.Error("Events leaked internal slice")
	}
}

func TestCovers(t *testing.T) {
	e := Event{Start: at(9, 0), End: at(23, 0)}
	if e.Covers(at(8, 23)) {
		t.Error("before start should not be covered")
	}
	if !e.Covers(at(9, 0)) || !e.Covers(at(15, 0)) || !e.Covers(at(23, 0)) {
		t.Error("window should be covered inclusively")
	}
	if e.Covers(at(23, 1)) {
		t.Error("after end should not be covered")
	}
	open := Event{Start: at(15, 3)}
	if !open.Open() || !open.Covers(at(30, 0)) {
		t.Error("open event should cover everything after start")
	}
}

func TestAtAndBetween(t *testing.T) {
	f := sampleFeed()
	got := f.At(at(15, 4))
	if len(got) != 2 { // M1 window + open incident I1
		t.Fatalf("At = %+v", got)
	}
	between := f.Between(at(1, 0), at(3, 0))
	if len(between) != 1 || between[0].ID != "U1" {
		t.Errorf("Between = %+v", between)
	}
	all := f.Between(at(1, 0), at(30, 0))
	if len(all) != 3 {
		t.Errorf("full window = %d events", len(all))
	}
}

func TestExplains(t *testing.T) {
	f := sampleFeed()
	if ev := f.Explains(at(10, 0), Maintenance, 0); ev == nil || ev.ID != "M1" {
		t.Errorf("Explains inside window = %+v", ev)
	}
	// Slack stretches the window.
	if ev := f.Explains(at(8, 20), Maintenance, 6*time.Hour); ev == nil {
		t.Error("slack before start should match")
	}
	if ev := f.Explains(at(8, 20), Maintenance, time.Hour); ev != nil {
		t.Error("insufficient slack should not match")
	}
	if ev := f.Explains(at(10, 0), Upgrade, 0); ev != nil {
		t.Errorf("kind filter leaked: %+v", ev)
	}
	if ev := f.Explains(at(20, 0), "", 0); ev == nil {
		t.Error("empty kind should match any")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := sampleFeed()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Errorf("restored len = %d", back.Len())
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`[{"kind":"maintenance"}]`))); err == nil {
		t.Error("event without id/start should fail")
	}
}

func TestFromScenario(t *testing.T) {
	sc := netsim.DefaultScenario()
	feed := FromScenario(sc)
	if feed.Len() == 0 {
		t.Fatal("empty feed from default scenario")
	}
	var maint, upg int
	for _, e := range feed.Events() {
		switch e.Kind {
		case Maintenance:
			maint++
		case Upgrade:
			upg++
		}
		if e.ID == "" || e.Scope == "" || e.Description == "" {
			t.Errorf("incomplete event: %+v", e)
		}
	}
	if maint < 3 {
		t.Errorf("maintenance events = %d, want the three removal windows", maint)
	}
	if upg < 5 {
		t.Errorf("upgrade events = %d", upg)
	}

	// The August 2021 dip must be covered by a maintenance window that ends
	// at the restore.
	dip := time.Date(2021, time.August, 9, 0, 0, 0, 0, time.UTC)
	ev := feed.Explains(dip, Maintenance, 12*time.Hour)
	if ev == nil {
		t.Fatal("August 2021 dip not covered by a maintenance window")
	}
	restore := time.Date(2021, time.August, 23, 0, 0, 0, 0, time.UTC)
	if !ev.End.Equal(restore) {
		t.Errorf("maintenance window ends %s, want the restore at %s", ev.End, restore)
	}
}
