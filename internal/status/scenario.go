package status

import (
	"fmt"
	"time"

	"ovhweather/internal/netsim"
)

// FromScenario derives the status feed a provider would have published for
// the given simulation scenario: every topology event that operators plan
// (router additions and removals, core link upgrades, peering activations)
// gets a status entry, in the way the real status site announces windows
// around the work.
//
// Incident-kind entries are emitted only for maintenance windows —
// RemoveRouters events that a later RestoreRouters undoes; permanent
// decommissions appear as planned maintenance.
func FromScenario(sc netsim.Scenario) *Feed {
	feed := NewFeed()
	seq := 0
	id := func() string {
		seq++
		return fmt.Sprintf("STATUS-%04d", seq)
	}
	for _, msc := range sc.Maps {
		// Pair each RemoveRouters with the following RestoreRouters, if any,
		// to distinguish maintenance windows from decommissions.
		restoreAfter := make(map[int]time.Time)
		for i, ev := range msc.Events {
			if ev.Kind != netsim.RemoveRouters {
				continue
			}
			for _, later := range msc.Events[i+1:] {
				if later.Kind == netsim.RestoreRouters {
					restoreAfter[i] = later.Time
					break
				}
				if later.Kind == netsim.RemoveRouters {
					break
				}
			}
		}
		for i, ev := range msc.Events {
			switch ev.Kind {
			case netsim.AddRouters:
				feed.Add(Event{
					ID: id(), Kind: Upgrade,
					Start: ev.Time, End: ev.Time.Add(12 * time.Hour),
					Scope:       string(msc.ID),
					Description: fmt.Sprintf("deploying %d new routers (%s)", ev.Count, ev.Note),
				})
			case netsim.RemoveRouters:
				end, isWindow := restoreAfter[i]
				if !isWindow {
					end = ev.Time.Add(24 * time.Hour)
				}
				feed.Add(Event{
					ID: id(), Kind: Maintenance,
					Start: ev.Time.Add(-6 * time.Hour), End: end,
					Scope:       string(msc.ID),
					Description: fmt.Sprintf("maintenance on %d routers (%s)", ev.Count, ev.Note),
				})
			case netsim.AddInternalLinks:
				feed.Add(Event{
					ID: id(), Kind: Upgrade,
					Start: ev.Time, End: ev.Time.Add(6 * time.Hour),
					Scope:       string(msc.ID),
					Description: fmt.Sprintf("adding %d backbone links (%s)", ev.Count, ev.Note),
				})
			case netsim.ActivateLinks:
				feed.Add(Event{
					ID: id(), Kind: Upgrade,
					Start: ev.Time, End: ev.Time.Add(2 * time.Hour),
					Scope:       string(msc.ID),
					Description: fmt.Sprintf("activating new capacity toward %s", ev.Peering),
				})
			}
		}
	}
	return feed
}
