package svg

// A hand-rolled streaming lexer for the weathermap SVG subset. The dataset
// is half a terabyte of machine-generated documents that use five tags and a
// handful of attributes; routing every byte through encoding/xml costs an
// allocation-heavy generality the input never exercises. The fast path
// byte-scans an in-memory document with reused scratch buffers, interns the
// heavily repeated class/fill/text strings, and parses coordinates without
// strconv garbage, while reproducing the std decoder's accept/reject
// behaviour and the ReadError/ValueError taxonomy exactly; fuzz_lexer_test.go
// holds the two paths together differentially.
//
// Eligibility is decided before lexing starts: a document qualifies for the
// fast path only if it contains no byte >= 0x80 and no "<!" sequence, so
// comments, CDATA, DOCTYPE directives and non-ASCII names never reach the
// hand-rolled code — StreamBytes silently routes such documents to the std
// decoder instead. Within the eligible set the lexer mirrors encoding/xml's
// Strict-mode semantics: name grammar, entity substitution (the five
// predefined entities plus numeric references), \r/\r\n newline rewriting,
// "]]>" and unescaped-< rejection, character-range validation, processing
// instructions including the <?xml version?> check, and raw-name matching of
// end tags. Error messages may differ in wording; error classes do not.

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"

	"ovhweather/internal/geom"
)

// UseStdDecoder routes Stream and StreamBytes through the encoding/xml
// decoder unconditionally. It exists for the ablation benchmark and for
// wmparse's -std-decoder flag, and must be set before processing begins —
// it is read concurrently and never synchronized.
var UseStdDecoder bool

// fastEligible reports whether the document qualifies for the hand-rolled
// lexer: pure ASCII and free of markup declarations ("<!" opens comments,
// CDATA sections and directives, none of which the weathermap emits). The
// pre-scan is what makes the fast path correct by construction — anything
// outside the subset is decided before the first element is emitted, so the
// std fallback never observes a half-lexed document.
//
//wm:hotpath
func fastEligible(data []byte) bool {
	for i := 0; i < len(data); i++ {
		b := data[i]
		if b >= 0x80 {
			return false
		}
		if b == '!' && i > 0 && data[i-1] == '<' {
			return false
		}
	}
	return true
}

// StreamBytes is Stream for an in-memory document: the fast path when the
// document is eligible, the std decoder otherwise.
//
//wm:hotpath
func StreamBytes(data []byte, fn func(Element) error) error {
	if UseStdDecoder || !fastEligible(data) {
		return StreamStd(bytes.NewReader(data), fn)
	}
	l := lexerPool.Get().(*lexer)
	err := l.run(data, fn)
	l.release()
	lexerPool.Put(l)
	return err
}

// ParseBytes is Parse for an in-memory document.
func ParseBytes(data []byte) ([]Element, error) {
	var out []Element
	err := StreamBytes(data, func(e Element) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Intern-table bounds: adversarial documents must not grow a pooled lexer
// without limit, so only short strings are interned and the table stops
// admitting new entries once full. Lookups past the cap still work — they
// just allocate like the std path would.
const (
	maxInternEntries = 1 << 14
	maxInternLen     = 64
)

// arenaBlock is the polygon arena's allocation unit, in points. A weathermap
// arrow has seven points, so one block serves ~145 arrows.
const arenaBlock = 1024

var lexerPool = sync.Pool{
	New: func() any { return &lexer{strings: make(map[string]string, 256)} },
}

// lexAttr is one parsed attribute: the local part of its name and the
// entity-resolved value, both pointing into the document or into the lexer's
// scratch buffer (valid until the next start tag).
type lexAttr struct {
	local    []byte
	value    []byte
	nonASCII bool // value contains entity-decoded runes >= 0x80
}

// lexFrame mirrors one open element: the raw (untranslated, prefix
// included) name for end-tag matching, as encoding/xml matches it, and the
// group class the reader-level state machine inherits from <g> frames.
type lexFrame struct {
	raw   []byte
	class string
}

type lexer struct {
	data []byte
	pos  int

	frames []lexFrame
	attrs  []lexAttr
	buf    []byte // entity/newline-resolved text scratch
	coords []float64

	pending    Element
	hasPending bool
	textBuf    []byte // accumulated trimmed character data of the pending <text>
	sawRoot    bool

	// strings survives across documents through the pool, so class names,
	// fill colors, router names and load percentages are allocated once per
	// process, not once per snapshot.
	strings map[string]string

	// arena backs the polygons of one document. Scan results retain the
	// points beyond the callback, so the arena is never pooled — each
	// document gets fresh blocks and release drops the reference.
	arena geom.Polygon
}

// release drops references to caller-owned memory before the lexer returns
// to the pool. The document buffer may be reused by the caller and the arena
// is retained by emitted elements; the scratch buffers and intern table stay.
func (l *lexer) release() {
	l.data = nil
	l.arena = nil
	l.pending = Element{}
	// Frame and attribute entries hold slices of the caller's document
	// buffer beyond the logical length; zero the backing arrays so a pooled
	// lexer never pins a document.
	frames := l.frames[:cap(l.frames)]
	clear(frames)
	attrs := l.attrs[:cap(l.attrs)]
	clear(attrs)
}

//wm:hotpath
func (l *lexer) run(data []byte, fn func(Element) error) error {
	l.data = data
	l.pos = 0
	l.frames = l.frames[:0]
	l.attrs = l.attrs[:0]
	l.hasPending = false
	l.sawRoot = false
	l.arena = nil

	for l.pos < len(l.data) {
		if l.data[l.pos] != '<' {
			if err := l.textRun(); err != nil {
				return err
			}
			continue
		}
		l.pos++
		if l.pos >= len(l.data) {
			return errUnexpectedEOF()
		}
		switch l.data[l.pos] {
		case '/':
			l.pos++
			if err := l.endTag(fn); err != nil {
				return err
			}
		case '?':
			l.pos++
			if err := l.procInst(); err != nil {
				return err
			}
		case '!':
			// Unreachable: fastEligible routed every "<!" to the std decoder.
			return readErrorf("markup declaration in fast path")
		default:
			if err := l.startTag(fn); err != nil {
				return err
			}
		}
	}
	if len(l.frames) > 0 {
		return errUnexpectedEOF()
	}
	if !l.sawRoot {
		return readErrorf("document contains no <svg> root")
	}
	return nil
}

func errUnexpectedEOF() error { return readErrorf("unexpected EOF") }

// Name grammar, ASCII slice of encoding/xml's tables: a name is a run of
// isNameByte bytes whose first byte is a name-start byte.
func isNameByte(c byte) bool {
	return 'A' <= c && c <= 'Z' ||
		'a' <= c && c <= 'z' ||
		'0' <= c && c <= '9' ||
		c == '_' || c == ':' || c == '.' || c == '-'
}

func isNameStartByte(c byte) bool {
	return 'A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_' || c == ':'
}

// errNoName is the "readName returned false" sentinel: the caller supplies
// the contextual message, mirroring the std decoder's division of labour.
type errNoNameT struct{}

func (errNoNameT) Error() string { return "no name" }

var errNoName error = errNoNameT{}

// lexNsName scans a namespaced name at the cursor and returns the raw bytes
// plus the local part after the prefix split. Like encoding/xml's nsname, a
// name with more than one colon is rejected, and "a:"/":a" keep the whole
// string as the local part.
//
//wm:hotpath
func (l *lexer) lexNsName() (raw, local []byte, err error) {
	start := l.pos
	if l.pos >= len(l.data) {
		return nil, nil, errUnexpectedEOF()
	}
	if !isNameByte(l.data[l.pos]) {
		return nil, nil, errNoName
	}
	for l.pos < len(l.data) && isNameByte(l.data[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.data) {
		// The std reader probes for the byte after the name and reports EOF.
		return nil, nil, errUnexpectedEOF()
	}
	raw = l.data[start:l.pos]
	if !isNameStartByte(raw[0]) {
		return nil, nil, readErrorf("invalid XML name: %s", raw)
	}
	switch bytes.Count(raw, []byte(":")) {
	case 0:
		local = raw
	case 1:
		i := bytes.IndexByte(raw, ':')
		if i == 0 || i == len(raw)-1 {
			local = raw
		} else {
			local = raw[i+1:]
		}
	default:
		return nil, nil, errNoName
	}
	return raw, local, nil
}

//wm:hotpath
func (l *lexer) space() {
	for l.pos < len(l.data) {
		switch l.data[l.pos] {
		case ' ', '\r', '\n', '\t':
			l.pos++
		default:
			return
		}
	}
}

// tagOf classifies a local element name; unknown tags map to "".
func tagOf(local []byte) Tag {
	switch len(local) {
	case 1:
		if local[0] == 'g' {
			return TagGroup
		}
	case 4:
		switch string(local) {
		case "rect":
			return TagRect
		case "text":
			return TagText
		case "line":
			return TagLine
		}
	case 7:
		if string(local) == "polygon" {
			return TagPolygon
		}
	}
	return ""
}

//wm:hotpath
func (l *lexer) startTag(fn func(Element) error) error {
	raw, local, err := l.lexNsName()
	if err == errNoName {
		return readErrorf("expected element name after <")
	}
	if err != nil {
		return err
	}

	l.attrs = l.attrs[:0]
	l.buf = l.buf[:0]
	selfClose := false
	for {
		l.space()
		if l.pos >= len(l.data) {
			return errUnexpectedEOF()
		}
		c := l.data[l.pos]
		if c == '/' {
			l.pos++
			if l.pos >= len(l.data) {
				return errUnexpectedEOF()
			}
			if l.data[l.pos] != '>' {
				return readErrorf("expected /> in element")
			}
			l.pos++
			selfClose = true
			break
		}
		if c == '>' {
			l.pos++
			break
		}
		_, alocal, err := l.lexNsName()
		if err == errNoName {
			return readErrorf("expected attribute name in element")
		}
		if err != nil {
			return err
		}
		l.space()
		if l.pos >= len(l.data) {
			return errUnexpectedEOF()
		}
		if l.data[l.pos] != '=' {
			return readErrorf("attribute name without = in element")
		}
		l.pos++
		l.space()
		if l.pos >= len(l.data) {
			return errUnexpectedEOF()
		}
		q := l.data[l.pos]
		if q != '"' && q != '\'' {
			return readErrorf("unquoted or missing attribute value in element")
		}
		l.pos++
		val, nonASCII, err := l.resolveText(int(q))
		if err != nil {
			return err
		}
		l.attrs = append(l.attrs, lexAttr{local: alocal, value: val, nonASCII: nonASCII})
	}

	if len(local) == 3 && string(local) == "svg" {
		l.sawRoot = true
	}

	kind := tagOf(local)
	switch kind {
	case TagGroup:
		// Groups carry the class their children inherit; the pending element
		// is deliberately left alone, mirroring the reader's state machine.
		l.frames = append(l.frames, lexFrame{raw: raw, class: l.internAttr("class")})
		if selfClose {
			l.frames = l.frames[:len(l.frames)-1]
		}
		return nil
	case TagRect:
		e, err := l.rectElement()
		if err != nil {
			return err
		}
		l.setPending(e)
	case TagText:
		e, err := l.textElement()
		if err != nil {
			return err
		}
		l.setPending(e)
	case TagPolygon:
		pts, err := l.pointsAttr()
		if err != nil {
			return err
		}
		e := Element{
			Tag:    TagPolygon,
			Class:  l.internAttr("class"),
			ID:     l.internAttr("id"),
			Fill:   l.internAttr("fill"),
			Points: pts,
		}
		l.setPending(e)
	default:
		// <line>, <svg> and anything unknown clear the pending slot.
		l.hasPending = false
	}
	l.frames = append(l.frames, lexFrame{raw: raw})
	if selfClose {
		l.frames = l.frames[:len(l.frames)-1]
		return l.maybeEmit(kind, fn)
	}
	return nil
}

//wm:hotpath
func (l *lexer) endTag(fn func(Element) error) error {
	raw, local, err := l.lexNsName()
	if err == errNoName {
		return readErrorf("expected element name after </")
	}
	if err != nil {
		return err
	}
	l.space()
	if l.pos >= len(l.data) {
		return errUnexpectedEOF()
	}
	if l.data[l.pos] != '>' {
		return readErrorf("invalid characters between </%s and >", raw)
	}
	l.pos++
	if len(l.frames) == 0 {
		return readErrorf("unexpected end element </%s>", raw)
	}
	top := l.frames[len(l.frames)-1]
	l.frames = l.frames[:len(l.frames)-1]
	if !bytes.Equal(top.raw, raw) {
		// encoding/xml matches end tags against the raw untranslated name.
		return readErrorf("element <%s> closed by </%s>", top.raw, raw)
	}
	return l.maybeEmit(tagOf(local), fn)
}

// procInst skips a processing instruction, applying the std decoder's
// <?xml version?> check (its sloppy substring matching included). The
// encoding pseudo-attribute never errors here because the reader installs a
// passthrough CharsetReader.
func (l *lexer) procInst() error {
	start := l.pos
	if l.pos >= len(l.data) {
		return errUnexpectedEOF()
	}
	if !isNameByte(l.data[l.pos]) {
		return readErrorf("expected target name after <?")
	}
	for l.pos < len(l.data) && isNameByte(l.data[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.data) {
		return errUnexpectedEOF()
	}
	target := l.data[start:l.pos]
	if !isNameStartByte(target[0]) {
		return readErrorf("invalid XML name: %s", target)
	}
	l.space()
	end := bytes.Index(l.data[l.pos:], []byte("?>"))
	if end < 0 {
		return errUnexpectedEOF()
	}
	content := l.data[l.pos : l.pos+end]
	l.pos += end + 2
	if string(target) == "xml" {
		if ver := procInstVal(content, []byte("version=")); len(ver) > 0 && string(ver) != "1.0" {
			return readErrorf("xml: unsupported version %q; only version 1.0 is supported", ver)
		}
	}
	return nil
}

// procInstVal is encoding/xml's procInst on bytes, quirks preserved: the
// parameter is located by substring search, so "aversion='2.0'" matches
// "version=" exactly as the std decoder matches it.
func procInstVal(s, param []byte) []byte {
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := bytes.Index(sub, param)
		if k < 0 || len(param)+k >= len(sub) {
			return nil
		}
		i += len(param) + k + 1
		if c := sub[len(param)+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return nil
	}
	j := bytes.IndexByte(s[i:], sep)
	if j < 0 {
		return nil
	}
	return s[i : i+j]
}

// textRun consumes one character-data run (up to the next '<' or EOF),
// validating it like the std decoder even when no element wants the text.
//
//wm:hotpath
func (l *lexer) textRun() error {
	l.buf = l.buf[:0]
	out, _, err := l.resolveText(-1)
	if err != nil {
		return err
	}
	if l.hasPending && l.pending.Tag == TagText {
		l.textBuf = append(l.textBuf, bytes.TrimSpace(out)...)
	}
	return nil
}

// resolveText scans character data at the cursor: plain text when quote < 0
// (ends at '<' or EOF), a quoted attribute value otherwise (ends at the
// quote, which is consumed). The returned bytes are either a zero-copy slice
// of the document or a slice of l.buf, valid until l.buf is next reset.
// Entity substitution, \r rewriting, "]]>"/unescaped-< rejection and
// character-range validation replicate encoding/xml's text().
//
//wm:hotpath
func (l *lexer) resolveText(quote int) (out []byte, nonASCII bool, err error) {
	// Fast scan: a run without '&', '\r' or ']' needs no rewriting, so the
	// document bytes are returned directly.
	i := l.pos
	for i < len(l.data) {
		b := l.data[i]
		if b == '&' || b == '\r' || b == ']' {
			return l.resolveTextSlow(quote)
		}
		if b == '<' {
			if quote >= 0 {
				return nil, false, readErrorf("unescaped < inside quoted string")
			}
			break
		}
		if quote >= 0 && b == byte(quote) {
			break
		}
		if b < 0x20 && b != '\t' && b != '\n' {
			return nil, false, readErrorf("illegal character code %U", rune(b))
		}
		i++
	}
	if quote >= 0 && i >= len(l.data) {
		return nil, false, errUnexpectedEOF()
	}
	out = l.data[l.pos:i]
	l.pos = i
	if quote >= 0 {
		l.pos++ // consume the closing quote
	}
	return out, false, nil
}

//wm:hotpath
func (l *lexer) resolveTextSlow(quote int) (out []byte, nonASCII bool, err error) {
	start := len(l.buf)
	var b0, b1 byte
	for {
		if l.pos >= len(l.data) {
			if quote >= 0 {
				return nil, false, errUnexpectedEOF()
			}
			break
		}
		b := l.data[l.pos]
		if quote < 0 && b0 == ']' && b1 == ']' && b == '>' {
			return nil, false, readErrorf("unescaped ]]> not in CDATA section")
		}
		if b == '<' {
			if quote >= 0 {
				return nil, false, readErrorf("unescaped < inside quoted string")
			}
			break
		}
		if quote >= 0 && b == byte(quote) {
			l.pos++
			break
		}
		if b == '&' {
			na, err := l.resolveEntity()
			if err != nil {
				return nil, false, err
			}
			nonASCII = nonASCII || na
			b0, b1 = 0, 0
			continue
		}
		l.pos++
		// Unescaped \r and \r\n are rewritten to \n; entity-produced bytes
		// bypass this because b0/b1 track raw input only.
		if b == '\r' {
			l.buf = append(l.buf, '\n')
		} else if b1 == '\r' && b == '\n' {
			// already wrote \n for the \r
		} else {
			l.buf = append(l.buf, b)
		}
		b0, b1 = b1, b
	}
	out = l.buf[start:]
	if err := validateChars(out, nonASCII); err != nil {
		return nil, false, err
	}
	return out, nonASCII, nil
}

// resolveEntity consumes one character reference at the cursor (which points
// at '&') and appends its substitution to l.buf. Only the five predefined
// entities and numeric references resolve; everything else is a syntax
// error, as in Strict mode with no Entity map.
//
//wm:hotpath
func (l *lexer) resolveEntity() (nonASCII bool, err error) {
	l.pos++ // past '&'
	if l.pos >= len(l.data) {
		return false, errUnexpectedEOF()
	}
	if l.data[l.pos] == '#' {
		l.pos++
		base := uint64(10)
		if l.pos < len(l.data) && l.data[l.pos] == 'x' {
			base = 16
			l.pos++
		}
		start := l.pos
		var n uint64
		overflow := false
		for l.pos < len(l.data) {
			c := l.data[l.pos]
			var d uint64
			switch {
			case '0' <= c && c <= '9':
				d = uint64(c - '0')
			case base == 16 && 'a' <= c && c <= 'f':
				d = uint64(c-'a') + 10
			case base == 16 && 'A' <= c && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				goto digitsDone
			}
			if n > (^uint64(0)-d)/base {
				overflow = true
			} else {
				n = n*base + d
			}
			l.pos++
		}
	digitsDone:
		if l.pos >= len(l.data) {
			return false, errUnexpectedEOF()
		}
		if l.data[l.pos] != ';' {
			return false, readErrorf("invalid character entity &%s", l.data[start-1:l.pos])
		}
		digits := l.pos - start
		l.pos++
		if digits == 0 || overflow || n > utf8.MaxRune {
			return false, readErrorf("invalid character entity &#...;")
		}
		// string(rune(n)) semantics: surrogates silently become U+FFFD, and
		// the character-range validation of the resolved run decides legality.
		r := rune(n)
		l.buf = utf8.AppendRune(l.buf, r)
		return r >= 0x80 || !utf8.ValidRune(r), nil
	}
	start := l.pos
	for l.pos < len(l.data) && isNameByte(l.data[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.data) {
		return false, errUnexpectedEOF()
	}
	if l.data[l.pos] != ';' {
		return false, readErrorf("invalid character entity &%s (no semicolon)", l.data[start:l.pos])
	}
	name := l.data[start:l.pos]
	l.pos++
	var ch byte
	switch string(name) {
	case "lt":
		ch = '<'
	case "gt":
		ch = '>'
	case "amp":
		ch = '&'
	case "apos":
		ch = '\''
	case "quot":
		ch = '"'
	default:
		return false, readErrorf("invalid character entity &%s;", name)
	}
	l.buf = append(l.buf, ch)
	return false, nil
}

// validateChars applies the std decoder's end-of-run character validation.
// Pure-ASCII runs take the byte check; runs with entity-decoded runes walk
// UTF-8 like encoding/xml does.
func validateChars(b []byte, nonASCII bool) error {
	if !nonASCII {
		for _, c := range b {
			if c < 0x20 && c != '\t' && c != '\n' && c != '\r' {
				return readErrorf("illegal character code %U", rune(c))
			}
		}
		return nil
	}
	for len(b) > 0 {
		r, size := utf8.DecodeRune(b)
		if r == utf8.RuneError && size == 1 {
			return readErrorf("invalid UTF-8")
		}
		b = b[size:]
		if !isInXMLCharRange(r) {
			return readErrorf("illegal character code %U", r)
		}
	}
	return nil
}

// isInXMLCharRange is encoding/xml's isInCharacterRange: the Char production
// of XML 1.0 §2.2.
func isInXMLCharRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// Reader-level element assembly — the same state machine Stream has always
// run on top of the std decoder.

//wm:hotpath
func (l *lexer) setPending(e Element) {
	if e.Class == "" {
		e.Class = l.inheritedClass()
	}
	l.pending = e
	l.hasPending = true
	l.textBuf = l.textBuf[:0]
}

//wm:hotpath
func (l *lexer) maybeEmit(kind Tag, fn func(Element) error) error {
	if !l.hasPending || kind == "" || l.pending.Tag != kind {
		return nil
	}
	if l.pending.Tag == TagText {
		l.pending.Text = l.intern(l.textBuf)
	}
	l.hasPending = false
	return fn(l.pending)
}

//wm:hotpath
func (l *lexer) inheritedClass() string {
	for i := len(l.frames) - 1; i >= 0; i-- {
		if l.frames[i].class != "" {
			return l.frames[i].class
		}
	}
	return ""
}

// attrRaw returns the resolved value of the named attribute, last occurrence
// winning like the reader's attribute map.
//
//wm:hotpath
func (l *lexer) attrRaw(name string) (val []byte, nonASCII, ok bool) {
	for i := len(l.attrs) - 1; i >= 0; i-- {
		if string(l.attrs[i].local) == name {
			return l.attrs[i].value, l.attrs[i].nonASCII, true
		}
	}
	return nil, false, false
}

//wm:hotpath
func (l *lexer) internAttr(name string) string {
	v, _, ok := l.attrRaw(name)
	if !ok {
		return ""
	}
	return l.intern(v)
}

// intern returns a string with b's content, reusing the pooled copy when one
// exists. The map lookup on string(b) compiles to a no-allocation probe.
//
//wm:hotpath
func (l *lexer) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := l.strings[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(l.strings) < maxInternEntries && len(s) <= maxInternLen {
		l.strings[s] = s
	}
	return s
}

//wm:hotpath
func (l *lexer) rectElement() (Element, error) {
	x, err := l.floatAttr("x")
	if err != nil {
		return Element{}, err
	}
	y, err := l.floatAttr("y")
	if err != nil {
		return Element{}, err
	}
	w, err := l.floatAttr("width")
	if err != nil {
		return Element{}, err
	}
	h, err := l.floatAttr("height")
	if err != nil {
		return Element{}, err
	}
	return Element{
		Tag:   TagRect,
		Class: l.internAttr("class"),
		ID:    l.internAttr("id"),
		Rect:  geom.RectFromXYWH(x, y, w, h),
	}, nil
}

//wm:hotpath
func (l *lexer) textElement() (Element, error) {
	x, err := l.floatAttr("x")
	if err != nil {
		return Element{}, err
	}
	y, err := l.floatAttr("y")
	if err != nil {
		return Element{}, err
	}
	return Element{
		Tag:   TagText,
		Class: l.internAttr("class"),
		ID:    l.internAttr("id"),
		Pos:   geom.Pt(x, y),
	}, nil
}

// floatAttr mirrors the reader's floatAttr: absent attributes are zero,
// values are space-trimmed and may carry a "px" suffix, and malformed values
// raise ValueError with the original resolved value.
//
//wm:hotpath
func (l *lexer) floatAttr(name string) (float64, error) {
	v, nonASCII, ok := l.attrRaw(name)
	if !ok {
		return 0, nil
	}
	if nonASCII {
		// Entity-decoded non-ASCII (e.g. &#160;) must trim like
		// strings.TrimSpace; take the exact std route on this rare path.
		s := strings.TrimSuffix(strings.TrimSpace(string(v)), "px")
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, &ValueError{Attr: name, Value: string(v)}
		}
		return f, nil
	}
	b := trimASCIISpace(v)
	if n := len(b); n >= 2 && b[n-2] == 'p' && b[n-1] == 'x' {
		b = b[:n-2]
	}
	f, ok2 := parseFloatFast(b)
	if !ok2 {
		var err error
		f, err = strconv.ParseFloat(string(b), 64)
		if err != nil {
			return 0, &ValueError{Attr: name, Value: string(v)}
		}
	}
	return f, nil
}

// trimASCIISpace trims the ASCII space set strings.TrimSpace would trim
// here; \v and \f cannot survive XML character validation, so ' ', '\t',
// '\n' and '\r' are the only candidates in a lexed value.
func trimASCIISpace(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

var pow10tab = [...]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
}

// parseFloatFast parses the plain decimal forms weathermap coordinates take
// ([+-]?digits[.digits]) without allocating, bit-identical to
// strconv.ParseFloat: an integer mantissa of at most 15 significant digits
// divided by an exact power of ten is correctly rounded (the same exact-
// arithmetic fast path strconv itself uses). Everything else — exponents,
// hex floats, Inf/NaN, underscores, overlong digit runs — reports !ok so the
// caller falls back to strconv.
//
//wm:hotpath
func parseFloatFast(b []byte) (float64, bool) {
	if len(b) == 0 || len(b) > 17 {
		return 0, false
	}
	i := 0
	neg := false
	switch b[0] {
	case '+':
		i = 1
	case '-':
		neg = true
		i = 1
	}
	var mant uint64
	digits, frac := 0, 0
	sawDot, sawDigit := false, false
	for ; i < len(b); i++ {
		c := b[i]
		switch {
		case '0' <= c && c <= '9':
			sawDigit = true
			mant = mant*10 + uint64(c-'0')
			digits++
			if sawDot {
				frac++
			}
		case c == '.' && !sawDot:
			sawDot = true
		default:
			return 0, false
		}
	}
	if !sawDigit || digits > 15 {
		return 0, false
	}
	f := float64(mant)
	if frac > 0 {
		f /= pow10tab[frac]
	}
	if neg {
		f = -f
	}
	return f, true
}

// pointsAttr parses the polygon points attribute into the document arena,
// with ParsePoints' exact splitting and error semantics.
//
//wm:hotpath
func (l *lexer) pointsAttr() (geom.Polygon, error) {
	v, nonASCII, _ := l.attrRaw("points")
	if nonASCII {
		return ParsePoints(string(v))
	}
	// ParsePoints rejects an odd coordinate count before parsing any field,
	// so count first to keep error precedence identical.
	fields := 0
	inField := false
	for _, c := range v {
		if pointsSep(c) {
			inField = false
		} else if !inField {
			inField = true
			fields++
		}
	}
	if fields%2 != 0 {
		return nil, &ValueError{Attr: "points", Value: string(v), Reason: "odd number of coordinates"}
	}
	l.coords = l.coords[:0]
	i := 0
	for i < len(v) {
		for i < len(v) && pointsSep(v[i]) {
			i++
		}
		if i >= len(v) {
			break
		}
		start := i
		for i < len(v) && !pointsSep(v[i]) {
			i++
		}
		field := v[start:i]
		f, ok := parseFloatFast(field)
		if !ok {
			var err error
			f, err = strconv.ParseFloat(string(field), 64)
			if err != nil {
				axis := "x"
				if len(l.coords)%2 == 1 {
					axis = "y"
				}
				return nil, &ValueError{
					Attr:   "points",
					Value:  string(v),
					Reason: "bad " + axis + " coordinate " + strconv.Quote(string(field)),
				}
			}
		}
		l.coords = append(l.coords, f)
	}
	pg := l.arenaAlloc(len(l.coords) / 2)
	for j := range pg {
		pg[j] = geom.Pt(l.coords[2*j], l.coords[2*j+1])
	}
	return pg, nil
}

func pointsSep(c byte) bool {
	return c == ' ' || c == ',' || c == '\t' || c == '\n' || c == '\r'
}

// arenaAlloc carves n points out of the document arena, growing it in
// blocks. The returned slice is capacity-clipped so appends by consumers can
// never clobber a neighbouring polygon.
//
//wm:hotpath
func (l *lexer) arenaAlloc(n int) geom.Polygon {
	if n == 0 {
		return geom.Polygon{}
	}
	if len(l.arena)+n > cap(l.arena) {
		size := arenaBlock
		if n > size {
			size = n
		}
		l.arena = make(geom.Polygon, 0, size)
	}
	start := len(l.arena)
	l.arena = l.arena[:start+n]
	return l.arena[start : start+n : start+n]
}

// readAllInto reads r to EOF into buf, reusing its capacity.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
