package svg

import (
	"bufio"
	"fmt"
	"io"

	"ovhweather/internal/geom"
)

// Writer emits an SVG document incrementally. It mirrors the structure of
// the OVH weather-map files: an <svg> root, optional <g> groups carrying
// class attributes, and flat rect/text/polygon children.
//
// Errors are sticky: the first write error is remembered and returned by
// Close; intermediate calls become no-ops after a failure, so call sites
// can chain drawing operations without per-call error checks.
type Writer struct {
	w      *bufio.Writer
	err    error
	open   int // nesting depth of open <g> elements
	closed bool
}

// NewWriter starts an SVG document of the given pixel dimensions on w.
func NewWriter(w io.Writer, width, height float64) *Writer {
	sw := &Writer{w: bufio.NewWriter(w)}
	sw.printf(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	sw.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s">`+"\n",
		trimFloat(width), trimFloat(height), trimFloat(width), trimFloat(height))
	return sw
}

func (sw *Writer) printf(format string, args ...any) {
	if sw.err != nil || sw.closed {
		return
	}
	if _, err := fmt.Fprintf(sw.w, format, args...); err != nil {
		sw.err = err
	}
}

// Err returns the first error encountered, if any.
func (sw *Writer) Err() error { return sw.err }

// BeginGroup opens a <g> element with the given class.
func (sw *Writer) BeginGroup(class string) {
	sw.printf(`<g class="%s">`+"\n", escape(class))
	sw.open++
}

// EndGroup closes the innermost open <g>. Closing with no open group is an
// error surfaced through Err/Close.
func (sw *Writer) EndGroup() {
	if sw.open == 0 {
		if sw.err == nil {
			sw.err = fmt.Errorf("svg: EndGroup without matching BeginGroup")
		}
		return
	}
	sw.printf("</g>\n")
	sw.open--
}

// Rect draws an axis-aligned rectangle with the given class and fill.
func (sw *Writer) Rect(r geom.Rect, class, fill string) {
	sw.printf(`<rect class="%s" x="%s" y="%s" width="%s" height="%s" fill="%s"/>`+"\n",
		escape(class), trimFloat(r.Min.X), trimFloat(r.Min.Y),
		trimFloat(r.W()), trimFloat(r.H()), escape(fill))
}

// Text draws a text element anchored at p.
func (sw *Writer) Text(p geom.Point, class, content string) {
	sw.printf(`<text class="%s" x="%s" y="%s">%s</text>`+"\n",
		escape(class), trimFloat(p.X), trimFloat(p.Y), escape(content))
}

// Polygon draws a filled polygon.
func (sw *Writer) Polygon(pg geom.Polygon, class, fill string) {
	sw.printf(`<polygon class="%s" points="%s" fill="%s"/>`+"\n",
		escape(class), FormatPoints(pg), escape(fill))
}

// Line draws a stroked line segment (used for decorative map features; the
// parser ignores them, which exercises the "skip unknown elements" path).
func (sw *Writer) Line(s geom.Segment, class, stroke string) {
	sw.printf(`<line class="%s" x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s"/>`+"\n",
		escape(class), trimFloat(s.A.X), trimFloat(s.A.Y),
		trimFloat(s.B.X), trimFloat(s.B.Y), escape(stroke))
}

// Raw writes a preformatted fragment verbatim. The fault injector uses it to
// produce the malformed documents the paper reports in its unprocessed-file
// accounting.
func (sw *Writer) Raw(s string) { sw.printf("%s", s) }

// Flush writes buffered output without closing the document. The fault
// injector uses it to emit deliberately truncated files.
func (sw *Writer) Flush() error {
	if err := sw.w.Flush(); err != nil && sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// Close ends the document and flushes. It reports the first error from any
// prior operation, unbalanced groups included.
func (sw *Writer) Close() error {
	if sw.closed {
		return sw.err
	}
	if sw.open != 0 && sw.err == nil {
		sw.err = fmt.Errorf("svg: %d unclosed group(s) at Close", sw.open)
	}
	sw.printf("</svg>\n")
	sw.closed = true
	if err := sw.w.Flush(); err != nil && sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// escape replaces the five XML-reserved characters.
func escape(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			b = appendLazy(b, s, i, "&amp;")
		case '<':
			b = appendLazy(b, s, i, "&lt;")
		case '>':
			b = appendLazy(b, s, i, "&gt;")
		case '"':
			b = appendLazy(b, s, i, "&quot;")
		case '\'':
			b = appendLazy(b, s, i, "&apos;")
		default:
			if b != nil {
				b = append(b, c)
			}
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// appendLazy defers allocation until the first reserved character is seen.
func appendLazy(b []byte, s string, i int, repl string) []byte {
	if b == nil {
		b = append(b, s[:i]...)
	}
	return append(b, repl...)
}
