package svg

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"ovhweather/internal/geom"
)

// FuzzParse checks that arbitrary input never panics the SVG reader, and
// that every element it produces carries sane geometry.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<svg></svg>`,
		`<svg><rect class="node" x="1" y="2" width="3" height="4"/></svg>`,
		`<svg><polygon points="0,0 1,1 2,0"/></svg>`,
		`<svg><g class="object router"><rect x="0" y="0" width="5" height="5"/><text x="1" y="4">fra</text></g></svg>`,
		`<svg><text class="labellink" x="1" y="1">42 %</text></svg>`,
		`<svg><rect x="NaN" width="x" height="1"/></svg>`,
		`<svg><polygon points="1,2 3"/></svg>`,
		`not xml`,
		`<svg><g><g><g><rect width="1" height="1"/></g></g></g></svg>`,
		`<svg><rect x="1e3px" y="-5" width="2.5" height="0"/></svg>`,
		``,
		`<svg`,
		`<svg><text x="0" y="0">&amp;&lt;&gt;</text></svg>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		elems, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range elems {
			switch e.Tag {
			case TagRect:
				if e.Rect.W() < 0 || e.Rect.H() < 0 {
					t.Fatalf("negative rect from %q: %+v", data, e.Rect)
				}
			case TagPolygon:
				if len(e.Points)%1 != 0 { // vacuous, but Points must be well formed
					t.Fatalf("bad polygon: %+v", e.Points)
				}
			}
		}
	})
}

// FuzzParsePoints checks the points-attribute parser against panics and
// length invariants.
func FuzzParsePoints(f *testing.F) {
	for _, s := range []string{"", "1,2", "1,2 3,4", "1 2 3 4", "a,b", "1,2 3", "1.5,-2.5 0,0"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		pg, err := ParsePoints(s)
		if err != nil {
			return
		}
		// Accepted input must round-trip through FormatPoints.
		if len(pg) == 0 {
			return
		}
		back, err := ParsePoints(FormatPoints(pg))
		if err != nil {
			t.Fatalf("formatted points failed to parse: %v", err)
		}
		if len(back) != len(pg) {
			t.Fatalf("round trip changed length: %d -> %d", len(pg), len(back))
		}
	})
}

// FuzzEscape checks that the writer's escaping always yields text that the
// XML reader decodes back verbatim.
func FuzzEscape(f *testing.F) {
	for _, s := range []string{"", "plain", `<&>"'`, "a&amp;b", "日本語", "#1", "42 %"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if !utf8.ValidString(s) || !validXMLText(s) {
			return // XML 1.0 cannot carry invalid UTF-8 or control characters
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, 10, 10)
		w.Text(geom.Pt(1, 1), "node", s)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		elems, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("escaped document failed to parse: %v\n%s", err, buf.String())
		}
		if len(elems) != 1 {
			t.Fatalf("elements = %d", len(elems))
		}
		if got := elems[0].Text; got != strings.TrimSpace(s) {
			// The reader trims surrounding whitespace of text nodes, as the
			// weather-map pipeline requires; inner content must survive.
			if strings.TrimSpace(got) != strings.TrimSpace(s) {
				t.Fatalf("text round trip: %q -> %q", s, got)
			}
		}
	})
}

func validXMLText(s string) bool {
	for _, r := range s {
		if r == 0x9 || r == 0xA || r == 0xD {
			continue
		}
		if r < 0x20 || (r >= 0xD800 && r <= 0xDFFF) || r == 0xFFFE || r == 0xFFFF {
			return false
		}
	}
	return true
}
