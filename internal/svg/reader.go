package svg

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"ovhweather/internal/geom"
)

// Parse reads an SVG document and returns its elements flattened in
// document order. Group (<g>) elements are not returned themselves; instead
// their class attribute is inherited by children that carry no class of
// their own, which is how the weather map attaches the "object ..." class to
// a router's rect and text.
//
// ReadError wraps a failure of the underlying XML reader: a syntax error,
// unbalanced or mismatched tags, or a document with no <svg> root. These are
// transport-level corruptions (truncated downloads, non-XML payloads) rather
// than weather-map structural violations, which extract reports separately
// as ScanError.
type ReadError struct{ Err error }

func (e *ReadError) Error() string { return "svg: " + e.Err.Error() }

// Unwrap exposes the underlying reader error to errors.Is/As.
func (e *ReadError) Unwrap() error { return e.Err }

func readErrorf(format string, args ...any) error {
	return &ReadError{Err: fmt.Errorf(format, args...)}
}

// ValueError reports a malformed attribute value on an otherwise
// well-formed element — the paper's "malformed attribute values"
// unprocessable-file class.
type ValueError struct {
	Attr   string
	Value  string
	Reason string // optional detail, e.g. "odd number of coordinates"
}

func (e *ValueError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("svg: malformed attribute %s=%q: %s", e.Attr, e.Value, e.Reason)
	}
	return fmt.Sprintf("svg: malformed attribute %s=%q", e.Attr, e.Value)
}

// Parse is the DOM-style entry point; Stream is the streaming equivalent.
func Parse(r io.Reader) ([]Element, error) {
	var out []Element
	err := Stream(r, func(e Element) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// streamBufPool recycles the whole-document buffers Stream reads into; the
// worker-pool path parses hundreds of thousands of ~600 KiB snapshots, so
// steady-state processing reuses one buffer per worker.
var streamBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// Stream reads an SVG document and invokes fn for every flat element in
// document order. By default it buffers the document (snapshots are under a
// megabyte) and runs the hand-rolled fast lexer; UseStdDecoder — and any
// document outside the lexer's eligible subset — routes through the
// encoding/xml path of StreamStd instead. Both paths emit identical element
// sequences and the same ReadError/ValueError taxonomy.
//
// A non-nil error from fn aborts the scan and is returned verbatim.
// Emitted elements never alias Stream's internal buffers and stay valid
// after Stream returns.
func Stream(r io.Reader, fn func(Element) error) error {
	if UseStdDecoder {
		return StreamStd(r, fn)
	}
	bp := streamBufPool.Get().(*[]byte)
	buf, err := readAllInto(*bp, r)
	*bp = buf
	if err != nil {
		streamBufPool.Put(bp)
		return &ReadError{Err: err}
	}
	err = StreamBytes(buf, fn)
	streamBufPool.Put(bp)
	return err
}

// StreamStd is Stream over encoding/xml: the differential reference the
// fast lexer is fuzzed against, the ablation baseline, and the fallback for
// documents outside the lexer's subset (non-ASCII bytes, comments, CDATA,
// DOCTYPE).
func StreamStd(r io.Reader, fn func(Element) error) error {
	dec := xml.NewDecoder(r)
	// Weather-map files occasionally carry latin-1 text; pass bytes through
	// rather than failing on charset lookups (the subset we parse is ASCII).
	dec.CharsetReader = func(charset string, input io.Reader) (io.Reader, error) {
		return input, nil
	}

	type frame struct {
		tag   Tag
		class string
	}
	var stack []frame
	inheritedClass := func() string {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].class != "" {
				return stack[i].class
			}
		}
		return ""
	}

	var pending *Element // open rect/text/polygon awaiting EndElement / text
	sawRoot := false

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if !sawRoot {
				return readErrorf("document contains no <svg> root")
			}
			return nil
		}
		if err != nil {
			return &ReadError{Err: err}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			name := Tag(t.Name.Local)
			if name == "svg" {
				sawRoot = true
			}
			attrs := attrMap(t.Attr)
			class := attrs["class"]
			switch name {
			case TagGroup:
				stack = append(stack, frame{tag: name, class: class})
				continue
			case TagRect:
				e, err := rectElement(attrs)
				if err != nil {
					return err
				}
				if e.Class == "" {
					e.Class = inheritedClass()
				}
				pending = &e
			case TagText:
				e, err := textElement(attrs)
				if err != nil {
					return err
				}
				if e.Class == "" {
					e.Class = inheritedClass()
				}
				pending = &e
			case TagPolygon:
				pts, err := ParsePoints(attrs["points"])
				if err != nil {
					return err
				}
				e := Element{Tag: TagPolygon, Class: class, ID: attrs["id"], Fill: attrs["fill"], Points: pts}
				if e.Class == "" {
					e.Class = inheritedClass()
				}
				pending = &e
			case TagLine:
				// Decorative; skipped like every other unknown element, but we
				// track it on the stack symmetry below.
				pending = nil
			default:
				pending = nil
			}
			stack = append(stack, frame{tag: name})
		case xml.EndElement:
			name := Tag(t.Name.Local)
			if len(stack) == 0 {
				return readErrorf("unbalanced </%s>", name)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.tag != name {
				return readErrorf("mismatched </%s>, open element is <%s>", name, top.tag)
			}
			if pending != nil && pending.Tag == name {
				if err := fn(*pending); err != nil {
					return err
				}
				pending = nil
			}
		case xml.CharData:
			if pending != nil && pending.Tag == TagText {
				pending.Text += strings.TrimSpace(string(t))
			}
		}
	}
}

func attrMap(attrs []xml.Attr) map[string]string {
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Name.Local] = a.Value
	}
	return m
}

func rectElement(attrs map[string]string) (Element, error) {
	x, err := floatAttr(attrs, "x")
	if err != nil {
		return Element{}, err
	}
	y, err := floatAttr(attrs, "y")
	if err != nil {
		return Element{}, err
	}
	w, err := floatAttr(attrs, "width")
	if err != nil {
		return Element{}, err
	}
	h, err := floatAttr(attrs, "height")
	if err != nil {
		return Element{}, err
	}
	return Element{
		Tag:   TagRect,
		Class: attrs["class"],
		ID:    attrs["id"],
		Rect:  geom.RectFromXYWH(x, y, w, h),
	}, nil
}

func textElement(attrs map[string]string) (Element, error) {
	x, err := floatAttr(attrs, "x")
	if err != nil {
		return Element{}, err
	}
	y, err := floatAttr(attrs, "y")
	if err != nil {
		return Element{}, err
	}
	return Element{
		Tag:   TagText,
		Class: attrs["class"],
		ID:    attrs["id"],
		Pos:   geom.Pt(x, y),
	}, nil
}

// floatAttr parses a numeric attribute; absent attributes default to zero,
// matching SVG semantics, but malformed values are reported — the paper
// observed real snapshots with malformed attribute values and counts them
// as unprocessable.
func floatAttr(attrs map[string]string, name string) (float64, error) {
	v, ok := attrs[name]
	if !ok {
		return 0, nil
	}
	// SVG lengths may carry a "px" suffix.
	v = strings.TrimSuffix(strings.TrimSpace(v), "px")
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &ValueError{Attr: name, Value: attrs[name]}
	}
	return f, nil
}
