package svg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ovhweather/internal/geom"
)

func TestParsePoints(t *testing.T) {
	pg, err := ParsePoints("0,0 10,0 5,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(pg) != 3 || !pg[2].Eq(geom.Pt(5, 8)) {
		t.Errorf("pg = %v", pg)
	}
	// Whitespace-only separators are legal SVG too.
	pg2, err := ParsePoints("0 0 10 0 5 8")
	if err != nil {
		t.Fatal(err)
	}
	if len(pg2) != 3 {
		t.Errorf("pg2 = %v", pg2)
	}
}

func TestParsePointsErrors(t *testing.T) {
	for _, s := range []string{"1,2 3", "a,b", "1,2 3,x"} {
		if _, err := ParsePoints(s); err == nil {
			t.Errorf("ParsePoints(%q) should error", s)
		}
	}
}

func TestFormatPointsRoundTrip(t *testing.T) {
	f := func(coords []int16) bool {
		if len(coords)%2 != 0 {
			coords = coords[:len(coords)-len(coords)%2]
		}
		pg := make(geom.Polygon, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pg = append(pg, geom.Pt(float64(coords[i]), float64(coords[i+1])))
		}
		s := FormatPoints(pg)
		back, err := ParsePoints(s)
		if err != nil {
			return len(pg) == 0 && s == ""
		}
		if len(back) != len(pg) {
			return false
		}
		for i := range pg {
			if !back[i].Eq(pg[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {1, "1"}, {1.5, "1.5"}, {1.25, "1.25"}, {1.257, "1.26"}, {-3.10, "-3.1"},
	}
	for _, c := range cases {
		if got := trimFloat(c.in); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	e := Element{Class: "object router highlight"}
	if !e.ClassHasPrefix("object") {
		t.Error("ClassHasPrefix(object) should be true")
	}
	if e.ClassHasPrefix("router") {
		t.Error("ClassHasPrefix(router) should be false (prefix of full attr)")
	}
	if !e.HasClass("router") || !e.HasClass("highlight") || !e.HasClass("object") {
		t.Error("HasClass token lookup failed")
	}
	if e.HasClass("high") {
		t.Error("HasClass should not match token prefixes")
	}
}

func TestWriterProducesParsableDocument(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 800, 600)
	w.BeginGroup("object router")
	w.Rect(geom.RectFromXYWH(10, 20, 60, 18), "", "#fff")
	w.Text(geom.Pt(12, 33), "", "fra-fr5-pb6-nc5")
	w.EndGroup()
	w.Polygon(geom.Polygon{geom.Pt(0, 0), geom.Pt(10, 4), geom.Pt(0, 8)}, "link", "#0f0")
	w.Polygon(geom.Polygon{geom.Pt(40, 0), geom.Pt(30, 4), geom.Pt(40, 8)}, "link", "#0f0")
	w.Text(geom.Pt(15, 4), "labellink", "42 %")
	w.Text(geom.Pt(25, 4), "labellink", "9 %")
	w.Rect(geom.RectFromXYWH(18, 0, 8, 8), "node", "#fff")
	w.Text(geom.Pt(19, 6), "node", "#1")
	w.Line(geom.Seg(geom.Pt(0, 100), geom.Pt(800, 100)), "decor", "#ccc")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	elems, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// line elements are skipped: rect+text (router) + 2 polygons + 2 loads +
	// rect+text (label) = 8.
	if len(elems) != 8 {
		t.Fatalf("got %d elements: %+v", len(elems), elems)
	}
	if elems[0].Tag != TagRect || !elems[0].ClassHasPrefix("object") {
		t.Errorf("elem0 = %+v, want object rect with inherited class", elems[0])
	}
	if elems[1].Tag != TagText || elems[1].Text != "fra-fr5-pb6-nc5" || !elems[1].ClassHasPrefix("object") {
		t.Errorf("elem1 = %+v", elems[1])
	}
	if elems[2].Tag != TagPolygon || len(elems[2].Points) != 3 {
		t.Errorf("elem2 = %+v", elems[2])
	}
	if elems[4].Text != "42 %" || elems[4].Class != "labellink" {
		t.Errorf("elem4 = %+v", elems[4])
	}
	if elems[6].Tag != TagRect || elems[6].Class != "node" {
		t.Errorf("elem6 = %+v", elems[6])
	}
	if elems[7].Text != "#1" {
		t.Errorf("elem7 = %+v", elems[7])
	}
}

func TestWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 100, 100)
	w.Text(geom.Pt(0, 0), "node", `<&>"'`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	elems, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 1 || elems[0].Text != `<&>"'` {
		t.Errorf("escaped text round trip = %+v", elems)
	}
}

func TestWriterUnbalancedGroups(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10, 10)
	w.BeginGroup("g1")
	if err := w.Close(); err == nil {
		t.Error("Close with open group should error")
	}

	w2 := NewWriter(&buf, 10, 10)
	w2.EndGroup()
	if w2.Err() == nil {
		t.Error("EndGroup without BeginGroup should error")
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		`<svg><rect x="bogus" width="1" height="1"/></svg>`,
		`<svg><polygon points="1,2 3"/></svg>`,
		`<svg><rect x="1" y="1" width="1" height="1">`,
		``,
		`not xml at all`,
	}
	for _, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse(%q) should error", doc)
		}
	}
}

func TestParseMissingAttributesDefaultZero(t *testing.T) {
	elems, err := Parse(strings.NewReader(`<svg><rect class="node"/><text class="node">x</text></svg>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 2 {
		t.Fatalf("elems = %+v", elems)
	}
	if !elems[0].Rect.Min.Eq(geom.Pt(0, 0)) {
		t.Errorf("default rect = %+v", elems[0].Rect)
	}
}

func TestParseNestedGroupClassInheritance(t *testing.T) {
	doc := `<svg>
	  <g class="outer">
	    <g class="object peering">
	      <rect x="0" y="0" width="5" height="5"/>
	      <text x="1" y="4">ARELION</text>
	    </g>
	    <rect x="9" y="9" width="1" height="1"/>
	  </g>
	</svg>`
	elems, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 {
		t.Fatalf("elems = %+v", elems)
	}
	if elems[0].Class != "object peering" || elems[1].Class != "object peering" {
		t.Errorf("inner inheritance: %q / %q", elems[0].Class, elems[1].Class)
	}
	if elems[2].Class != "outer" {
		t.Errorf("outer inheritance: %q", elems[2].Class)
	}
}

func TestParseOwnClassBeatsInherited(t *testing.T) {
	doc := `<svg><g class="object router"><text class="labellink" x="0" y="0">42 %</text></g></svg>`
	elems, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if elems[0].Class != "labellink" {
		t.Errorf("class = %q, want labellink", elems[0].Class)
	}
}

func TestStreamAbort(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10, 10)
	for i := 0; i < 5; i++ {
		w.Rect(geom.RectFromXYWH(float64(i), 0, 1, 1), "node", "#fff")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	sentinel := bytes.ErrTooLarge
	err := Stream(&buf, func(Element) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestWriterRawAllowsInvalidOutput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10, 10)
	w.Raw(`<rect x="oops />` + "\n")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(&buf); err == nil {
		t.Error("document with raw garbage should not parse")
	}
}

func TestParsePreservesDocumentOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10, 10)
	for i := 0; i < 10; i++ {
		w.Text(geom.Pt(float64(i), 0), "node", string(rune('a'+i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	elems, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range elems {
		if e.Text != string(rune('a'+i)) {
			t.Fatalf("order violated at %d: %q", i, e.Text)
		}
	}
}
