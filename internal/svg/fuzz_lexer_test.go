// Differential fuzzing of the fast lexer against the encoding/xml path.
// This lives in package svg_test because the corpus seeds are rendered with
// internal/render, which itself imports svg.
package svg_test

import (
	"bytes"
	"math"
	"testing"

	"ovhweather/internal/netsim"
	"ovhweather/internal/render"
	"ovhweather/internal/svg"
	"ovhweather/internal/wmap"
)

// renderedCorpus renders all four backbone maps of the default scenario at
// its end state — the same documents the pipeline processes for the paper's
// tables.
func renderedCorpus(tb testing.TB) map[wmap.MapID][]byte {
	tb.Helper()
	sc := netsim.DefaultScenario()
	sim, err := netsim.New(sc)
	if err != nil {
		tb.Fatalf("netsim: %v", err)
	}
	maps, err := sim.SnapshotAt(sc.End)
	if err != nil {
		tb.Fatalf("snapshot: %v", err)
	}
	out := make(map[wmap.MapID][]byte, len(maps))
	for _, m := range maps {
		var buf bytes.Buffer
		if err := render.Render(&buf, m, render.Options{}); err != nil {
			tb.Fatalf("render %s: %v", m.ID, err)
		}
		out[m.ID] = buf.Bytes()
	}
	return out
}

func collectInto(dst *[]svg.Element) func(svg.Element) error {
	return func(e svg.Element) error {
		*dst = append(*dst, e)
		return nil
	}
}

// errClass buckets an error the way dataset.classify does; the fast lexer
// must agree with the std decoder on the class even when messages differ.
func errClass(tb testing.TB, err error) string {
	switch err.(type) {
	case nil:
		return "ok"
	case *svg.ValueError:
		return "value"
	case *svg.ReadError:
		return "read"
	default:
		tb.Fatalf("error outside the svg taxonomy: %T %v", err, err)
		return ""
	}
}

func feq(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }

func sameElement(a, b svg.Element) bool {
	if a.Tag != b.Tag || a.Class != b.Class || a.ID != b.ID || a.Text != b.Text || a.Fill != b.Fill {
		return false
	}
	if !feq(a.Rect.Min.X, b.Rect.Min.X) || !feq(a.Rect.Min.Y, b.Rect.Min.Y) ||
		!feq(a.Rect.Max.X, b.Rect.Max.X) || !feq(a.Rect.Max.Y, b.Rect.Max.Y) ||
		!feq(a.Pos.X, b.Pos.X) || !feq(a.Pos.Y, b.Pos.Y) {
		return false
	}
	if (a.Points == nil) != (b.Points == nil) || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if !feq(a.Points[i].X, b.Points[i].X) || !feq(a.Points[i].Y, b.Points[i].Y) {
			return false
		}
	}
	return true
}

func sameElements(a, b []svg.Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameElement(a[i], b[i]) {
			return false
		}
	}
	return true
}

// FuzzLexerDifferential holds the fast lexer and the encoding/xml decoder
// together: on every eligible input the two must produce identical element
// sequences (including the prefix emitted before a failure) and errors of
// the same class. Ineligible inputs exercise only the routing invariant —
// StreamBytes must defer to the std path.
func FuzzLexerDifferential(f *testing.F) {
	// Seed with rendered corpus material without drowning the mutator in
	// megabytes: the smallest full map plus a window of the Europe document.
	// Full-document equality on all four maps is covered by
	// TestLexerMatchesStdOnRenderedCorpus.
	corpus := renderedCorpus(f)
	smallest := wmap.Europe
	for id, doc := range corpus {
		if len(doc) < len(corpus[smallest]) {
			smallest = id
		}
	}
	f.Add(corpus[smallest])
	if eu := corpus[wmap.Europe]; len(eu) > 4096 {
		f.Add(eu[:4096])
	}
	seeds := []string{
		`<?xml version="1.0" encoding="UTF-8"?><svg xmlns="x" width="10" height="10"><g class="object router"><rect x="1" y="2" width="3" height="4"/><text x="1" y="4">fra-fr5</text></g></svg>`,
		`<svg><polygon class="a" points="0,0 1,1 2,0" fill="#00ff00"/><polygon points="3,3 4,4 5,3" fill="#ff0000"/><text class="labellink" x="1" y="1">42 %</text></svg>`,
		`<svg><text x='0' y='0'>&amp;&#66;&#x43; d</text></svg>`,
		`<svg><rect x=" 1px" y="&#49;" width="1e2" height=".5"/></svg>`,
		`<?xml aversion='2.0'?><svg><?pi ?x?></svg>`,
		`<s:svg><s:rect x="1"y="2"width="3"height="4"/></s:svg>`,
		`<svg><rect x="bad" width="x"/></svg>`,
		`<svg><polygon points="1,2 3"/></svg>`,
		`<svg>]]'</svg>`,
		`<svg`,
		``,
		"<svg><text x='0' y='0'>a\r\nb\rc</text></svg>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var stdElems []svg.Element
		stdErr := svg.StreamStd(bytes.NewReader(data), collectInto(&stdElems))

		if !svg.FastEligible(data) {
			// Routing invariant: ineligible documents take the std path, so
			// StreamBytes must reproduce it exactly.
			var routed []svg.Element
			routedErr := svg.StreamBytes(data, collectInto(&routed))
			if errClass(t, routedErr) != errClass(t, stdErr) || !sameElements(routed, stdElems) {
				t.Fatalf("std fallback diverged on ineligible input %q", data)
			}
			return
		}

		var fastElems []svg.Element
		fastErr := svg.LexBytes(data, collectInto(&fastElems))
		if cf, cs := errClass(t, fastErr), errClass(t, stdErr); cf != cs {
			t.Fatalf("error class diverged on %q:\n fast: %s (%v)\n  std: %s (%v)",
				data, cf, fastErr, cs, stdErr)
		}
		if !sameElements(fastElems, stdElems) {
			t.Fatalf("elements diverged on %q:\n fast: %+v\n  std: %+v", data, fastElems, stdElems)
		}
		// Identical ValueErrors, not just the same class: the reader promises
		// the same Attr/Value/Reason on both paths.
		if fv, ok := fastErr.(*svg.ValueError); ok {
			sv := stdErr.(*svg.ValueError)
			if *fv != *sv {
				t.Fatalf("ValueError diverged on %q:\n fast: %+v\n  std: %+v", data, *fv, *sv)
			}
		}
	})
}

// TestLexerMatchesStdOnRenderedCorpus is the acceptance check in test form:
// on every rendered backbone map the fast path must be eligible, default,
// and element-for-element identical to the std decoder.
func TestLexerMatchesStdOnRenderedCorpus(t *testing.T) {
	for id, doc := range renderedCorpus(t) {
		if !svg.FastEligible(doc) {
			t.Errorf("%s: rendered document ineligible for the fast path", id)
			continue
		}
		var fast, std, routed []svg.Element
		if err := svg.LexBytes(doc, collectInto(&fast)); err != nil {
			t.Errorf("%s: fast lexer failed: %v", id, err)
			continue
		}
		if err := svg.StreamStd(bytes.NewReader(doc), collectInto(&std)); err != nil {
			t.Errorf("%s: std decoder failed: %v", id, err)
			continue
		}
		if !sameElements(fast, std) {
			t.Errorf("%s: element sequences diverge (fast %d elements, std %d)", id, len(fast), len(std))
		}
		// The default entry point must route this document to the fast path
		// and still agree.
		if err := svg.StreamBytes(doc, collectInto(&routed)); err != nil {
			t.Errorf("%s: StreamBytes failed: %v", id, err)
			continue
		}
		if !sameElements(routed, std) {
			t.Errorf("%s: StreamBytes diverges from the std decoder", id)
		}
	}
}
