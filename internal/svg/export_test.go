package svg

// Test-only exports: the differential fuzz test lives in package svg_test
// (it renders corpus documents with internal/render, which imports svg) and
// needs to drive the fast lexer and its eligibility pre-scan directly.

// FastEligible exposes the fast-path pre-scan.
func FastEligible(data []byte) bool { return fastEligible(data) }

// LexBytes runs the hand-rolled lexer unconditionally, bypassing the
// eligibility routing of StreamBytes. Callers must only pass eligible
// documents; the differential tests guard that with FastEligible.
func LexBytes(data []byte, fn func(Element) error) error {
	l := lexerPool.Get().(*lexer)
	err := l.run(data, fn)
	l.release()
	lexerPool.Put(l)
	return err
}

// ParseFloatFast exposes the no-allocation float parser for differential
// unit tests against strconv.
func ParseFloatFast(b []byte) (float64, bool) { return parseFloatFast(b) }
