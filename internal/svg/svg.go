// Package svg provides the minimal SVG document model the weather-map
// pipeline needs: a writer that emits the flat element structure the OVH
// Network Weathermap publishes, and a reader that turns an SVG document back
// into the flat element sequence Algorithm 1 of the paper consumes.
//
// The weather map's SVG is deliberately *not* hierarchical: routers, link
// arrows, load percentages and link labels appear as sibling elements whose
// relationships exist only in 2D space. The reader therefore flattens
// whatever grouping exists and preserves document order, which Algorithm 1
// depends on (the two polygons of a link are adjacent, the two load texts
// follow them, a label's rect precedes its text).
package svg

import (
	"fmt"
	"strconv"
	"strings"

	"ovhweather/internal/geom"
)

// Tag identifies the SVG element kinds the weather map uses.
type Tag string

// Tags appearing in weather-map documents.
const (
	TagRect    Tag = "rect"
	TagText    Tag = "text"
	TagPolygon Tag = "polygon"
	TagLine    Tag = "line"
	TagGroup   Tag = "g"
)

// Element is one flat SVG element in document order.
//
// Depending on Tag, a subset of the fields is meaningful:
//   - TagRect: Rect (from x/y/width/height)
//   - TagText: Pos (from x/y) and Text
//   - TagPolygon: Points
//   - TagGroup: no geometry of its own; the reader emits a group's class on
//     each of its children instead, mirroring how the extraction scripts see
//     class attributes after flattening.
type Element struct {
	Tag    Tag
	Class  string
	ID     string
	Text   string
	Fill   string // fill attribute (polygons carry the load color)
	Rect   geom.Rect
	Pos    geom.Point
	Points geom.Polygon
}

// ClassHasPrefix reports whether the element's class attribute starts with
// prefix, matching the paper's "elem.class starts with object" test. Classes
// are space-separated lists; the prefix test applies to the full attribute,
// as the weather map emits the discriminating token first.
func (e Element) ClassHasPrefix(prefix string) bool {
	return strings.HasPrefix(e.Class, prefix)
}

// HasClass reports whether cls appears as one of the space-separated class
// tokens.
func (e Element) HasClass(cls string) bool {
	for _, tok := range strings.Fields(e.Class) {
		if tok == cls {
			return true
		}
	}
	return false
}

// ParsePoints parses an SVG points attribute ("x1,y1 x2,y2 ..." with
// either comma or whitespace separators) into a polygon.
func ParsePoints(s string) (geom.Polygon, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t' || r == '\n' || r == '\r'
	})
	if len(fields)%2 != 0 {
		return nil, &ValueError{Attr: "points", Value: s, Reason: "odd number of coordinates"}
	}
	pg := make(geom.Polygon, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		x, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, &ValueError{Attr: "points", Value: s, Reason: fmt.Sprintf("bad x coordinate %q", fields[i])}
		}
		y, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			return nil, &ValueError{Attr: "points", Value: s, Reason: fmt.Sprintf("bad y coordinate %q", fields[i+1])}
		}
		pg = append(pg, geom.Pt(x, y))
	}
	return pg, nil
}

// FormatPoints renders a polygon as an SVG points attribute value.
func FormatPoints(pg geom.Polygon) string {
	var b strings.Builder
	for i, p := range pg {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(trimFloat(p.X))
		b.WriteByte(',')
		b.WriteString(trimFloat(p.Y))
	}
	return b.String()
}

// trimFloat formats a coordinate compactly (SVG files are large; the
// dataset's 227 GiB of SVGs motivates shaving digits).
func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
