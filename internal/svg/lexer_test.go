package svg

import (
	"bytes"
	"math"
	"reflect"
	"strconv"
	"testing"
)

// lexAll collects the fast lexer's output for one document.
func lexAll(t *testing.T, doc string) ([]Element, error) {
	t.Helper()
	if !fastEligible([]byte(doc)) {
		t.Fatalf("document unexpectedly ineligible for the fast path: %q", doc)
	}
	var out []Element
	err := LexBytes([]byte(doc), func(e Element) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// stdAll collects the std decoder's output for the same document.
func stdAll(doc string) ([]Element, error) {
	var out []Element
	err := StreamStd(bytes.NewReader([]byte(doc)), func(e Element) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// TestLexerAgainstStdTable pins the fast lexer to the std decoder on the
// constructs the weathermap grammar and its edge cases exercise: entities,
// newline rewriting, processing instructions, namespace prefixes, group
// class inheritance and the pending-element state machine.
func TestLexerAgainstStdTable(t *testing.T) {
	docs := []string{
		// Plain corpus shapes.
		`<?xml version="1.0" encoding="UTF-8"?><svg xmlns="http://www.w3.org/2000/svg" width="100" height="100"><rect class="object" x="1" y="2" width="3" height="4"/></svg>`,
		`<svg><g class="object router"><rect x="0" y="0" width="5" height="5"/><text x="1" y="4">fra-fr5</text></g></svg>`,
		`<svg><polygon class="arrow" points="0,0 1,1 2,0" fill="#00ff00"/><polygon points="3,3 4,4 5,3" fill="#ff0000"/></svg>`,
		`<svg><text class="labellink" x="1" y="1">42 %</text><line x1="0" y1="0" x2="9" y2="9"/></svg>`,
		// Entities in text and attribute values.
		`<svg><text x="0" y="0">&amp;&lt;&gt;&apos;&quot;</text></svg>`,
		`<svg><text x="0" y="0">A&#66;C &#x44; &#101;</text></svg>`,
		`<svg><rect class="a&amp;b" x="&#49;" y="2" width="3" height="4"/></svg>`,
		`<svg><rect x="&#160;5" y="0" width="1" height="1"/></svg>`, // entity NBSP trims like the std path
		`<svg><text x="0" y="0">&#xD800;</text></svg>`,              // surrogate becomes U+FFFD, not an error
		// Newline rewriting and whitespace trimming.
		"<svg><text x='0' y='0'>a\r\nb</text></svg>",
		"<svg><text x='0' y='0'>  spaced  </text></svg>",
		"<svg><text x='0' y='0'>one</text><text x='1' y='1'>two</text></svg>",
		// Processing instructions, including the version check quirks.
		`<?xml version="1.0"?><svg/>`,
		`<?xml version="2.0"?><svg/>`,
		`<?xml aversion="2.0"?><svg/>`, // sloppy substring match: treated as version
		`<?xml-stylesheet href="x"?><svg/>`,
		`<svg><?pi anything goes ?? ?></svg>`,
		`<?xml encoding="latin-1"?><svg/>`, // passthrough CharsetReader never errors
		// Namespace prefixes: local names drive the state machine, raw names
		// match end tags.
		`<s:svg xmlns:s="u"><s:rect x="1" y="1" width="1" height="1"/></s:svg>`,
		`<svg><a:text x="0" y="0">n</a:text></svg>`,
		`<svg:svg><svg:g class="object"><svg:rect width="1" height="1"/></svg:g></svg:svg>`,
		// Pending-element state machine edge cases.
		`<svg><rect x="1" y="1" width="1" height="1"><g class="c"/></rect></svg>`,
		`<svg><text x="0" y="0">a<g>b</g>c</text></svg>`,
		`<svg><rect width="1" height="1"><rect width="2" height="2"/></rect></svg>`,
		`<svg><g class="outer"><g class=""><rect width="1" height="1"/></g></g></svg>`,
		`<svg><rect width="1" height="1" class="own"/></svg>`,
		// Attribute oddities: duplicates (last wins), no space between
		// attributes, single quotes, px suffixes, empty points.
		`<svg><rect x="1" x="2" y="0" width="1" height="1"/></svg>`,
		`<svg><rect x="1"y="2"width="3"height="4"/></svg>`,
		`<svg><rect x = '1' y ='2' width= '3' height='4px'/></svg>`,
		`<svg><polygon points=""/></svg>`,
		`<svg><polygon points="  1,2  3,4  "/></svg>`,
		// Error cases: malformed values (ValueError) and broken XML
		// (ReadError).
		`<svg><rect x="nope" y="2" width="3" height="4"/></svg>`,
		`<svg><polygon points="1,2 3"/></svg>`,
		`<svg><polygon points="1,x 3,4"/></svg>`,
		`<svg><rect x="1"</svg>`,
		`<svg><rect x=1/></svg>`,
		`<svg></rect></svg>`,
		`<svg><rect></svg>`,
		`<svg>]]></svg>`,
		`<svg>&unknown;</svg>`,
		`<svg>&#xFFFFFF;</svg>`,
		`<svg>&#2;</svg>`,
		`<svg/><svg/>`, // multiple roots are fine for the std decoder
		`no markup at all`,
		`<notsvg></notsvg>`,
		`<svg`,
		`<a:b:c/>`,
		`<9tag/>`,
		``,
	}
	for _, doc := range docs {
		fast, fastErr := lexAll(t, doc)
		std, stdErr := stdAll(doc)
		if cf, cs := errClass(fastErr), errClass(stdErr); cf != cs {
			t.Errorf("%q: error class fast=%v (%v) std=%v (%v)", doc, cf, fastErr, cs, stdErr)
			continue
		}
		if !elementsEqual(fast, std) {
			t.Errorf("%q:\n fast: %+v\n  std: %+v", doc, fast, std)
		}
	}
}

// errClass buckets an error into the taxonomy dataset.classify consumes.
func errClass(err error) string {
	switch err.(type) {
	case nil:
		return "ok"
	case *ValueError:
		return "value"
	case *ReadError:
		return "read"
	default:
		return "other:" + err.Error()
	}
}

// elementsEqual compares element sequences with NaN-tolerant float
// comparison (reflect.DeepEqual would report NaN != NaN).
func elementsEqual(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !elementEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func elementEqual(a, b Element) bool {
	if a.Tag != b.Tag || a.Class != b.Class || a.ID != b.ID || a.Text != b.Text || a.Fill != b.Fill {
		return false
	}
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !feq(a.Rect.Min.X, b.Rect.Min.X) || !feq(a.Rect.Min.Y, b.Rect.Min.Y) ||
		!feq(a.Rect.Max.X, b.Rect.Max.X) || !feq(a.Rect.Max.Y, b.Rect.Max.Y) ||
		!feq(a.Pos.X, b.Pos.X) || !feq(a.Pos.Y, b.Pos.Y) {
		return false
	}
	if (a.Points == nil) != (b.Points == nil) || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if !feq(a.Points[i].X, b.Points[i].X) || !feq(a.Points[i].Y, b.Points[i].Y) {
			return false
		}
	}
	return true
}

// TestFastEligible pins the pre-scan rule: pure ASCII without markup
// declarations.
func TestFastEligible(t *testing.T) {
	cases := []struct {
		data string
		want bool
	}{
		{`<svg/>`, true},
		{``, true},
		{`<svg><text x="0" y="0">a&#233;b</text></svg>`, true}, // non-ASCII via entity stays eligible
		{"<svg>\xc3\xa9</svg>", false},                         // raw UTF-8
		{"<svg>\xff</svg>", false},                             // raw latin-1
		{`<!DOCTYPE svg><svg/>`, false},
		{`<svg><!-- c --></svg>`, false},
		{`<svg><![CDATA[x]]></svg>`, false},
		{`<svg>a<!b</svg>`, false},
		{`<svg>a!b</svg>`, true}, // bare '!' is fine
	}
	for _, c := range cases {
		if got := fastEligible([]byte(c.data)); got != c.want {
			t.Errorf("fastEligible(%q) = %v, want %v", c.data, got, c.want)
		}
	}
}

// TestParseFloatFast checks the no-allocation float parser bit-for-bit
// against strconv on accepted inputs and confirms it declines everything it
// cannot parse exactly.
func TestParseFloatFast(t *testing.T) {
	accept := []string{
		"0", "1", "-1", "+1", "42", "3.25", "-3.25", "0.5", ".5", "5.",
		"1234.75", "-0", "007", "999999999999999", "0.000000000001",
		"123456789.123456", "-987654.125",
	}
	for _, s := range accept {
		got, ok := parseFloatFast([]byte(s))
		if !ok {
			t.Errorf("parseFloatFast(%q) declined", s)
			continue
		}
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("strconv rejected %q: %v", s, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("parseFloatFast(%q) = %v, strconv = %v", s, got, want)
		}
	}
	decline := []string{
		"", "1e3", "1E3", "0x1p-2", "Inf", "NaN", "nan", "1_000",
		"1234567890123456", // 16 significant digits
		"..", "1..2", "--1", "++1", "+", "-", ".",
		"12345678901234567890",
	}
	for _, s := range decline {
		if _, ok := parseFloatFast([]byte(s)); ok {
			t.Errorf("parseFloatFast(%q) accepted; must fall back to strconv", s)
		}
	}
}

// TestInternCaps checks the intern table's growth bounds: oversized and
// overflow strings are still returned correctly, just not retained.
func TestInternCaps(t *testing.T) {
	l := &lexer{strings: make(map[string]string)}
	long := bytes.Repeat([]byte("x"), maxInternLen+1)
	if got := l.intern(long); got != string(long) {
		t.Fatalf("interned long string corrupted")
	}
	if len(l.strings) != 0 {
		t.Fatalf("oversized string was retained in the intern table")
	}
	short := []byte("object")
	a := l.intern(short)
	b := l.intern(short)
	if a != "object" || b != "object" {
		t.Fatalf("intern corrupted value: %q %q", a, b)
	}
	if len(l.strings) != 1 {
		t.Fatalf("intern table size = %d, want 1", len(l.strings))
	}
}

// TestLexerPoolReuse runs two different documents through the pooled
// StreamBytes path and checks the second parse is not contaminated by the
// first (stale frames, stale pending element, stale arena).
func TestLexerPoolReuse(t *testing.T) {
	docA := []byte(`<svg><g class="object"><rect x="1" y="2" width="3" height="4"/><text x="1" y="4">fra</text></g></svg>`)
	docB := []byte(`<svg><polygon points="0,0 1,1 2,0" fill="#123456"/></svg>`)
	for i := 0; i < 3; i++ {
		for _, doc := range [][]byte{docA, docB} {
			fast, err := ParseBytes(doc)
			if err != nil {
				t.Fatalf("ParseBytes: %v", err)
			}
			std, err := stdAll(string(doc))
			if err != nil {
				t.Fatalf("StreamStd: %v", err)
			}
			if !reflect.DeepEqual(fast, std) {
				t.Fatalf("pooled parse diverged on round %d:\n fast: %+v\n  std: %+v", i, fast, std)
			}
		}
	}
}

// TestStreamBytesRetention ensures emitted elements survive mutation of the
// input buffer — the dataset layer reuses read buffers across snapshots.
func TestStreamBytesRetention(t *testing.T) {
	doc := []byte(`<svg><g class="object"><rect x="1" y="2" width="3" height="4"/><text x="5" y="6">name-x</text></g><polygon points="0,0 1,1 2,0" fill="#abcdef"/></svg>`)
	var got []Element
	if err := StreamBytes(doc, func(e Element) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range doc {
		doc[i] = 'Z'
	}
	want, err := stdAll(`<svg><g class="object"><rect x="1" y="2" width="3" height="4"/><text x="5" y="6">name-x</text></g><polygon points="0,0 1,1 2,0" fill="#abcdef"/></svg>`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("elements alias the input buffer:\n got: %+v\nwant: %+v", got, want)
	}
}
