package main

import (
	"context"
	"errors"
	"io"
	"log"
	"os"
	"testing"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/wmap"
)

// failingSource always refuses to produce a map, so every SetTime fails —
// the condition the consecutive-failure cap exists for.
type failingSource struct{}

func (failingSource) MapAt(id wmap.MapID, at time.Time) (*wmap.Map, error) {
	return nil, errors.New("synthetic failure")
}

// TestRunClockFailureCap checks the virtual clock gives up with an error
// after maxTickFailures consecutive SetTime failures instead of spinning.
func TestRunClockFailureCap(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	site := collect.NewServer(failingSource{}, []wmap.MapID{wmap.Europe})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := runClock(ctx, site, time.Unix(0, 0), time.Minute, time.Millisecond)
	if err == nil {
		t.Fatal("runClock returned nil; want the consecutive-failure error (or the test context expired)")
	}
	if ctx.Err() != nil {
		t.Fatalf("runClock did not hit the cap within the test timeout: %v", err)
	}
}

// TestRunClockStopsOnCancel checks cancellation ends the clock cleanly with
// a nil error, the graceful-shutdown path.
func TestRunClockStopsOnCancel(t *testing.T) {
	site := collect.NewServer(failingSource{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := runClock(ctx, site, time.Unix(0, 0), time.Minute, time.Hour); err != nil {
		t.Fatalf("cancelled runClock = %v, want nil", err)
	}
}
