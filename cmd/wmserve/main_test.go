package main

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/events"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// failingSource always refuses to produce a map, so every SetTime fails —
// the condition the consecutive-failure cap exists for.
type failingSource struct{}

func (failingSource) MapAt(id wmap.MapID, at time.Time) (*wmap.Map, error) {
	return nil, errors.New("synthetic failure")
}

// TestRunClockFailureCap checks the virtual clock gives up with an error
// after maxTickFailures consecutive SetTime failures instead of spinning.
func TestRunClockFailureCap(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	site := collect.NewServer(failingSource{}, []wmap.MapID{wmap.Europe})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := runClock(ctx, site, time.Unix(0, 0), time.Minute, time.Millisecond)
	if err == nil {
		t.Fatal("runClock returned nil; want the consecutive-failure error (or the test context expired)")
	}
	if ctx.Err() != nil {
		t.Fatalf("runClock did not hit the cap within the test timeout: %v", err)
	}
}

// TestNewHandlerMountsArchiveAPI builds a tiny archive and checks the
// handler wiring: the query API, the stats endpoint, and expvar all
// respond, and the block cache is attached to the reader (repeat topology
// serves record hits).
func TestNewHandlerMountsArchiveAPI(t *testing.T) {
	path := t.TempDir() + "/a.tsdb"
	w, err := tsdb.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	m := &wmap.Map{
		ID:    wmap.Europe,
		Time:  time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC),
		Nodes: []wmap.Node{{Name: "par-g1", Kind: wmap.Router}, {Name: "fra-g1", Kind: wmap.Router}},
		Links: []wmap.Link{{A: "par-g1", B: "fra-g1", LabelA: "#1", LabelB: "#1", LoadAB: 10, LoadBA: 20}},
	}
	if err := w.Append(m); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := tsdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	h := newHandler(http.NotFoundHandler(), rd, 1<<20, nil, newHealth("starting"))
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}
	for _, url := range []string{"/api/v1/maps", "/api/v1/stats", "/api/v1/events", "/debug/vars", "/healthz"} {
		if rec := get(url); rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d (%s)", url, rec.Code, rec.Body)
		}
	}
	// Without a live hub the stream endpoint refuses rather than hanging.
	if rec := get("/api/v1/stream"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("GET /api/v1/stream without hub = %d, want 503", rec.Code)
	}
	get("/api/v1/topology?map=europe")
	get("/api/v1/topology?map=europe")
	if s := rd.BlockCache().Stats(); s.Hits == 0 {
		t.Errorf("cache not wired: stats %+v after repeated topology serves", s)
	}
	body := get("/debug/vars").Body.String()
	if !strings.Contains(body, "tsdb_block_cache") {
		t.Error("expvar page lacks tsdb_block_cache")
	}
	if !strings.Contains(body, "tsdb_events") {
		t.Error("expvar page lacks tsdb_events")
	}

	// Without an archive the site handler serves unchanged, but the health
	// probes still answer.
	plain := newHandler(http.NotFoundHandler(), nil, 1<<20, nil, newHealth("starting"))
	if rec := httptest.NewRecorder(); true {
		plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/maps", nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("archiveless /api/v1/maps = %d, want the site's 404", rec.Code)
		}
	}
	if rec := httptest.NewRecorder(); true {
		plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("archiveless /healthz = %d, want 200", rec.Code)
		}
	}
}

// TestHealthProbes checks the readiness split: /healthz is always 200,
// /readyz serves 503 with the pending reason until markReady, then 200.
func TestHealthProbes(t *testing.T) {
	hs := newHealth("live tail has not caught up with the writer yet")
	h := newHandler(http.NotFoundHandler(), nil, 0, nil, hs)
	probe := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}
	if rec := probe("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	rec := probe("/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "caught up") {
		t.Fatalf("/readyz before ready = %d %q", rec.Code, rec.Body)
	}
	hs.markReady()
	if rec := probe("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after markReady = %d, want 200", rec.Code)
	}
}

// TestRunRefresherPublishesEventsAndReadies drives the live loop end to
// end: a writer appends congestion-bearing snapshots while the refresher
// polls; the first successful poll must flip readiness, and each adopted
// commit must republish the newly committed events to the hub.
func TestRunRefresherPublishesEventsAndReadies(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	path := t.TempDir() + "/live.tsdb"
	w, err := tsdb.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC)
	snap := func(i int, load wmap.Load) *wmap.Map {
		return &wmap.Map{
			ID:    wmap.Europe,
			Time:  base.Add(time.Duration(i) * 5 * time.Minute),
			Nodes: []wmap.Node{{Name: "par-g1", Kind: wmap.Router}, {Name: "fra-g1", Kind: wmap.Router}},
			Links: []wmap.Link{{A: "par-g1", B: "fra-g1", LabelA: "#1", LabelB: "#1", LoadAB: load, LoadBA: 20}},
		}
	}
	if err := w.Append(snap(0, 30)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	rd, err := tsdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	hub := events.NewBroadcaster()
	defer hub.Close()
	sub := hub.Subscribe(16)
	defer sub.Close()
	hs := newHealth("catching up")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		runRefresher(ctx, rd, time.Millisecond, hub, hs)
	}()

	// Crossing the onset threshold commits one congestion event.
	if err := w.Append(snap(1, 70)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C():
		if ev.Type != events.TypeCongestionOnset || ev.A != "par-g1" {
			t.Fatalf("streamed event = %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("committed event never reached the hub")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !hs.ready.Load() {
		if time.Now().After(deadline) {
			t.Fatal("refresher never marked the server ready")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}

// TestRunClockStopsOnCancel checks cancellation ends the clock cleanly with
// a nil error, the graceful-shutdown path.
func TestRunClockStopsOnCancel(t *testing.T) {
	site := collect.NewServer(failingSource{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := runClock(ctx, site, time.Unix(0, 0), time.Minute, time.Hour); err != nil {
		t.Fatalf("cancelled runClock = %v, want nil", err)
	}
}
