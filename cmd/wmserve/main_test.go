package main

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// failingSource always refuses to produce a map, so every SetTime fails —
// the condition the consecutive-failure cap exists for.
type failingSource struct{}

func (failingSource) MapAt(id wmap.MapID, at time.Time) (*wmap.Map, error) {
	return nil, errors.New("synthetic failure")
}

// TestRunClockFailureCap checks the virtual clock gives up with an error
// after maxTickFailures consecutive SetTime failures instead of spinning.
func TestRunClockFailureCap(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	site := collect.NewServer(failingSource{}, []wmap.MapID{wmap.Europe})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := runClock(ctx, site, time.Unix(0, 0), time.Minute, time.Millisecond)
	if err == nil {
		t.Fatal("runClock returned nil; want the consecutive-failure error (or the test context expired)")
	}
	if ctx.Err() != nil {
		t.Fatalf("runClock did not hit the cap within the test timeout: %v", err)
	}
}

// TestNewHandlerMountsArchiveAPI builds a tiny archive and checks the
// handler wiring: the query API, the stats endpoint, and expvar all
// respond, and the block cache is attached to the reader (repeat topology
// serves record hits).
func TestNewHandlerMountsArchiveAPI(t *testing.T) {
	path := t.TempDir() + "/a.tsdb"
	w, err := tsdb.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	m := &wmap.Map{
		ID:    wmap.Europe,
		Time:  time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC),
		Nodes: []wmap.Node{{Name: "par-g1", Kind: wmap.Router}, {Name: "fra-g1", Kind: wmap.Router}},
		Links: []wmap.Link{{A: "par-g1", B: "fra-g1", LabelA: "#1", LabelB: "#1", LoadAB: 10, LoadBA: 20}},
	}
	if err := w.Append(m); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := tsdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	h := newHandler(http.NotFoundHandler(), rd, 1<<20)
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}
	for _, url := range []string{"/api/v1/maps", "/api/v1/stats", "/debug/vars"} {
		if rec := get(url); rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d (%s)", url, rec.Code, rec.Body)
		}
	}
	get("/api/v1/topology?map=europe")
	get("/api/v1/topology?map=europe")
	if s := rd.BlockCache().Stats(); s.Hits == 0 {
		t.Errorf("cache not wired: stats %+v after repeated topology serves", s)
	}
	if body := get("/debug/vars").Body.String(); !strings.Contains(body, "tsdb_block_cache") {
		t.Error("expvar page lacks tsdb_block_cache")
	}

	// Without an archive the site handler serves unchanged.
	plain := newHandler(http.NotFoundHandler(), nil, 1<<20)
	if rec := httptest.NewRecorder(); true {
		plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/maps", nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("archiveless /api/v1/maps = %d, want the site's 404", rec.Code)
		}
	}
}

// TestRunClockStopsOnCancel checks cancellation ends the clock cleanly with
// a nil error, the graceful-shutdown path.
func TestRunClockStopsOnCancel(t *testing.T) {
	site := collect.NewServer(failingSource{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := runClock(ctx, site, time.Unix(0, 0), time.Minute, time.Hour); err != nil {
		t.Fatalf("cancelled runClock = %v, want nil", err)
	}
}
