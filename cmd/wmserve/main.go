// Command wmserve runs the synthetic OVH Network Weathermap website: an
// HTTP server exposing the current SVG image of each backbone map, updated
// every tick of a virtual clock that compresses simulated time.
//
// Usage:
//
//	wmserve [-addr :8080] [-start RFC3339] [-step 5m] [-tick 1s]
//	        [-archive FILE] [-live] [-refresh 2s] [-block-cache BYTES]
//	        [-pprof 127.0.0.1:6060]
//
// Every -tick of wall-clock time advances the simulation by -step, exactly
// like the real site's five-minute refresh, so a collector pointed at
// http://ADDR/map/europe.svg observes the same update pattern the paper's
// crawler did.
//
// -archive mounts the read-only query API of a columnar tsdb archive (see
// internal/tsdb) under /api/v1/ alongside the live site:
//
//	GET /api/v1/maps
//	GET /api/v1/topology?map=&at=
//	GET /api/v1/links/{id}/load?from=&to=&step=
//	GET /api/v1/grid?from=&to=&step=&bands=&links=
//	GET /api/v1/imbalance?map=&at=
//	GET /api/v1/events?map=&type=&from=&to=
//	GET /api/v1/stream              (SSE, -live only)
//	GET /api/v1/stats
//
// Archive queries serve decoded blocks from a sharded in-process LRU sized
// by -block-cache (default 64 MiB, 0 disables); cache hit/miss/eviction
// counters are visible on /api/v1/stats and, with the rest of the
// process's expvar state (including tsdb_events), on /debug/vars.
//
// -live tails an archive that a concurrent `wmparse -follow` (or wmcollect
// -archive) is still appending to: every -refresh interval the reader
// adopts newly committed blocks, /api/v1/stats advertises the growing
// covered time range, and ETags roll forward so stale clients re-fetch.
// In-flight queries are never disturbed — each pins the committed snapshot
// it started on. Evolution events committed by the writer are republished
// to /api/v1/stream subscribers as they are adopted.
//
// -pprof mounts net/http/pprof on a second, loopback-only listener so CPU
// and heap profiles can be taken from the box without exposing the
// profiler on the public address; any non-loopback host is rejected at
// startup.
//
// /healthz answers 200 as soon as the process serves; /readyz answers 503
// until the archive is open and, in -live mode, the tail has caught up to
// the writer's latest commit, then 200 — the split load balancers expect.
//
// SIGINT or SIGTERM shuts the server down gracefully: in-flight requests
// drain (bounded by a timeout), the virtual clock stops, and the process
// exits 0. A virtual clock that fails maxTickFailures consecutive ticks
// aborts the server with a nonzero exit instead of spinning forever.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/events"
	"ovhweather/internal/netsim"
	"ovhweather/internal/status"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// maxTickFailures is the consecutive SetTime-failure cap: a virtual clock
// that cannot advance (for example after simulated time runs past the
// scenario end) must stop the server rather than log the same error once a
// second forever.
const maxTickFailures = 10

// shutdownTimeout bounds how long in-flight requests may drain after a
// shutdown signal.
const shutdownTimeout = 5 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmserve: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		startStr = flag.String("start", "2020-07-01T00:00:00Z", "virtual start time (RFC3339)")
		step     = flag.Duration("step", 5*time.Minute, "virtual time per tick")
		tick     = flag.Duration("tick", time.Second, "wall-clock tick interval")
		archive  = flag.String("archive", "", "serve the tsdb archive query API from `file` under /api/v1/")
		live     = flag.Bool("live", false, "tail a still-appending archive: refresh the reader as blocks are committed")
		refresh  = flag.Duration("refresh", 2*time.Second, "how often -live polls the archive for new committed blocks")
		cacheB   = flag.Int64("block-cache", tsdb.DefaultBlockCacheBytes, "decoded-block cache budget in `bytes` for archive queries (0 disables)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this loopback-only `address` (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()
	start, err := time.Parse(time.RFC3339, *startStr)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	if *live && *archive == "" {
		log.Fatal("-live requires -archive")
	}
	if *pprofA != "" {
		host, _, err := net.SplitHostPort(*pprofA)
		if err != nil || !isLoopbackHost(host) {
			log.Fatalf("-pprof %q: must bind a loopback address (e.g. 127.0.0.1:6060) — profiles expose process internals", *pprofA)
		}
	}
	os.Exit(run(*addr, *archive, *cacheB, start, *step, *tick, *live, *refresh, *pprofA))
}

// isLoopbackHost accepts only hosts that cannot leave the machine; the
// pprof endpoint exposes heap contents and must never face the network.
func isLoopbackHost(h string) bool {
	if h == "localhost" {
		return true
	}
	ip := net.ParseIP(h)
	return ip != nil && ip.IsLoopback()
}

// health backs the /healthz and /readyz probes. Liveness is serving at
// all; readiness flips once the archive is open and the live tail has
// caught up, and carries the reason while it has not.
type health struct {
	ready  atomic.Bool
	reason atomic.Value // string: why not ready yet
}

func newHealth(reason string) *health {
	h := &health{}
	h.reason.Store(reason)
	return h
}

func (h *health) markReady() { h.ready.Store(true) }

func (h *health) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (h *health) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.ready.Load() {
		io.WriteString(w, "ready\n")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "not ready: %s\n", h.reason.Load())
}

// newHandler assembles the site handler, mounting the health probes, the
// archive query API (with SSE streaming when a hub is supplied), the
// stats-bearing expvar page, and the block cache when an archive reader is
// present.
func newHandler(site http.Handler, rd *tsdb.Reader, cacheBytes int64, hub *events.Broadcaster, hs *health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", hs.handleHealthz)
	mux.HandleFunc("GET /readyz", hs.handleReadyz)
	if rd != nil {
		cache := tsdb.NewBlockCache(cacheBytes)
		rd.SetBlockCache(cache)
		publishCacheStats(cache)
		publishPlannerStats(rd)
		publishGridStats(rd)
		publishEventStats(hub, rd)
		mux.Handle("/api/v1/", tsdb.NewAPIHandlerWithStream(rd, hub))
		mux.Handle("/debug/vars", expvar.Handler())
	}
	mux.Handle("/", site)
	return mux
}

// publishCacheStats exposes the block cache's counters as the
// tsdb_block_cache expvar. Publish panics on duplicate names, so re-entry
// (tests call newHandler repeatedly) rebinds through a stable Func that
// reads the latest cache.
var cacheVar struct {
	cache *tsdb.BlockCache
	once  bool
}

func publishCacheStats(c *tsdb.BlockCache) {
	cacheVar.cache = c
	if cacheVar.once {
		return
	}
	cacheVar.once = true
	expvar.Publish("tsdb_block_cache", expvar.Func(func() any {
		return cacheVar.cache.Stats()
	}))
}

// publishPlannerStats exposes the query planner's per-tier counters as the
// tsdb_planner expvar, with the same rebind-through-a-Func dance as the
// cache stats.
var plannerVar struct {
	rd   *tsdb.Reader
	once bool
}

func publishPlannerStats(rd *tsdb.Reader) {
	plannerVar.rd = rd
	if plannerVar.once {
		return
	}
	plannerVar.once = true
	expvar.Publish("tsdb_planner", expvar.Func(func() any {
		return plannerVar.rd.PlannerStats()
	}))
}

// publishGridStats exposes the grid engine's counters as the tsdb_grid
// expvar, with the same rebind-through-a-Func dance as the cache stats.
var gridVar struct {
	rd   *tsdb.Reader
	once bool
}

func publishGridStats(rd *tsdb.Reader) {
	gridVar.rd = rd
	if gridVar.once {
		return
	}
	gridVar.once = true
	expvar.Publish("tsdb_grid", expvar.Func(func() any {
		return gridVar.rd.GridStats()
	}))
}

// publishEventStats exposes the event subsystem's counters — persisted
// event frames plus, in -live mode, the broadcaster's subscriber count and
// published/dropped/per-type fire totals — as the tsdb_events expvar, with
// the same rebind-through-a-Func dance as the cache stats.
var eventsVar struct {
	hub  *events.Broadcaster
	rd   *tsdb.Reader
	once bool
}

func publishEventStats(hub *events.Broadcaster, rd *tsdb.Reader) {
	eventsVar.hub, eventsVar.rd = hub, rd
	if eventsVar.once {
		return
	}
	eventsVar.once = true
	expvar.Publish("tsdb_events", expvar.Func(func() any {
		out := map[string]any{"frames": eventsVar.rd.EventFrames()}
		if eventsVar.hub != nil {
			out["broadcast"] = eventsVar.hub.Stats()
		}
		return out
	}))
}

// runRefresher polls the live archive for new committed blocks until ctx
// is cancelled. Refresh errors are logged and retried — a partially
// written checkpoint replacement can make a single poll fail benignly —
// except ErrArchiveReplaced, which is permanent: the file under the reader
// is no longer the archive it opened, so the refresher stops and the
// server keeps serving the last consistent state.
//
// Each adopted commit also republishes the archive's newly committed
// evolution events to hub, so /api/v1/stream subscribers follow the
// writer's detectors with one poll interval of lag. The first successful
// poll marks the server ready: the tail has observed the writer's latest
// commit at least once.
func runRefresher(ctx context.Context, rd *tsdb.Reader, every time.Duration, hub *events.Broadcaster, hs *health) {
	tk := time.NewTicker(every)
	defer tk.Stop()
	frontier := rd.EventFrames() // history is for /api/v1/events, not the stream
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
			changed, err := rd.Refresh()
			switch {
			case errors.Is(err, tsdb.ErrArchiveReplaced):
				log.Printf("live refresh: %v; freezing at version %d", err, rd.Version())
				return
			case err != nil:
				log.Printf("live refresh: %v", err)
				continue
			case changed && !rd.Live():
				// The writer closed the archive into its footered form;
				// nothing more will be committed.
				frontier = publishEvents(ctx, rd, hub, frontier)
				hs.markReady()
				log.Printf("live refresh: archive closed, serving its final state (%d blocks)",
					rd.Stats().Blocks)
				return
			case changed:
				frontier = publishEvents(ctx, rd, hub, frontier)
				log.Printf("live refresh: adopted commit version %d (%d blocks)",
					rd.Version(), rd.Stats().Blocks)
			}
			hs.markReady()
		}
	}
}

// publishEvents pushes the event frames committed past frontier into the
// broadcaster and returns the new frontier. Errors leave the frontier
// unmoved so the next poll retries the same span.
func publishEvents(ctx context.Context, rd *tsdb.Reader, hub *events.Broadcaster, frontier int) int {
	if hub == nil {
		return frontier
	}
	evs, n, err := rd.EventsSince(ctx, frontier)
	if err != nil {
		log.Printf("live events: %v", err)
		return frontier
	}
	for i := range evs {
		hub.Publish(evs[i])
	}
	return n
}

func run(addr, archive string, cacheBytes int64, start time.Time, step, tick time.Duration, live bool, refresh time.Duration, pprofAddr string) int {
	sim, err := netsim.New(netsim.DefaultScenario())
	if err != nil {
		log.Print(err)
		return 1
	}
	site := collect.NewServer(sim, wmap.AllMaps())
	site.SetStatusFeed(status.FromScenario(sim.Scenario()))
	if err := site.SetTime(start); err != nil {
		log.Print(err)
		return 1
	}

	var rd *tsdb.Reader
	if archive != "" {
		var err error
		if rd, err = tsdb.OpenFile(archive); err != nil {
			log.Print(err)
			return 1
		}
		defer rd.Close()
	}
	var hub *events.Broadcaster
	if live {
		hub = events.NewBroadcaster()
		defer hub.Close()
	}
	hs := newHealth("live tail has not caught up with the writer yet")
	if !live {
		hs.markReady() // no tail to wait for: ready as soon as we serve
	}
	handler := newHandler(site, rd, cacheBytes, hub, hs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if live {
		go runRefresher(ctx, rd, refresh, hub, hs)
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The profiling endpoint gets its own loopback-only listener — never
	// the public mux — mounted explicitly so nothing else riding the
	// default mux leaks onto it.
	var pprofSrv *http.Server
	if pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof: %v", err)
			}
		}()
		log.Printf("pprof on http://%s/debug/pprof/ (loopback only)", pprofAddr)
	}

	// The virtual clock and the listener each report on their own channel;
	// whichever fails first (or a shutdown signal) decides the exit path.
	tickErr := make(chan error, 1)
	go func() { tickErr <- runClock(ctx, site, start, step, tick) }()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	log.Printf("serving weather map on %s (virtual time from %s, %s per %s)",
		addr, start.Format(time.RFC3339), step, tick)
	display := addr
	if strings.HasPrefix(addr, ":") {
		display = "localhost" + addr
	}
	log.Printf("try: curl http://%s/map/europe.svg", display)
	log.Printf("     curl http://%s/status.json", display)
	if archive != "" {
		log.Printf("     curl http://%s/api/v1/maps", display)
		log.Printf("     curl http://%s/api/v1/stats   (block-cache counters; also expvar on /debug/vars)", display)
		log.Printf("archive block cache: %d MiB budget", cacheBytes>>20)
	}

	code := 0
	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
	case err := <-tickErr:
		// runClock only returns non-nil on the consecutive-failure cap.
		log.Print(err)
		code = 1
	case err := <-serveErr:
		log.Print(err)
		return 1 // listener never started or died: nothing left to drain
	}

	// Graceful drain: stop accepting, let in-flight requests finish, bounded
	// by shutdownTimeout. stop() first so a second signal kills immediately.
	stop()
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if pprofSrv != nil {
		pprofSrv.Shutdown(sctx)
	}
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("shutdown: %v", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		code = 1
	}
	return code
}

// runClock advances the virtual clock by step every tick until ctx is
// cancelled, returning nil. Transient SetTime failures are logged and reset
// on the next success; maxTickFailures consecutive failures abort the clock
// with the error instead of spinning. The ticker is stopped on every return
// path, so the goroutine leaks nothing.
func runClock(ctx context.Context, site *collect.Server, start time.Time, step, tick time.Duration) error {
	tk := time.NewTicker(tick)
	defer tk.Stop()
	t := start
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tk.C:
			t = t.Add(step)
			if err := site.SetTime(t); err != nil {
				fails++
				log.Printf("tick %s: %v", t.Format(time.RFC3339), err)
				if fails >= maxTickFailures {
					return fmt.Errorf("virtual clock: %d consecutive tick failures, giving up: %w", fails, err)
				}
				continue
			}
			fails = 0
		}
	}
}
