// Command wmserve runs the synthetic OVH Network Weathermap website: an
// HTTP server exposing the current SVG image of each backbone map, updated
// every tick of a virtual clock that compresses simulated time.
//
// Usage:
//
//	wmserve [-addr :8080] [-start RFC3339] [-step 5m] [-tick 1s]
//
// Every -tick of wall-clock time advances the simulation by -step, exactly
// like the real site's five-minute refresh, so a collector pointed at
// http://ADDR/map/europe.svg observes the same update pattern the paper's
// crawler did.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/netsim"
	"ovhweather/internal/status"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmserve: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		startStr = flag.String("start", "2020-07-01T00:00:00Z", "virtual start time (RFC3339)")
		step     = flag.Duration("step", 5*time.Minute, "virtual time per tick")
		tick     = flag.Duration("tick", time.Second, "wall-clock tick interval")
	)
	flag.Parse()
	start, err := time.Parse(time.RFC3339, *startStr)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}

	sim, err := netsim.New(netsim.DefaultScenario())
	if err != nil {
		log.Fatal(err)
	}
	srv := collect.NewServer(sim, wmap.AllMaps())
	srv.SetStatusFeed(status.FromScenario(sim.Scenario()))
	if err := srv.SetTime(start); err != nil {
		log.Fatal(err)
	}

	go func() {
		t := start
		for range time.Tick(*tick) {
			t = t.Add(*step)
			if err := srv.SetTime(t); err != nil {
				log.Printf("tick %s: %v", t, err)
			}
		}
	}()

	log.Printf("serving weather map on %s (virtual time from %s, %s per %s)",
		*addr, start.Format(time.RFC3339), *step, *tick)
	log.Printf("try: curl http://localhost%s/map/europe.svg", *addr)
	log.Printf("     curl http://localhost%s/status.json", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
