// Command wmevents lists the evolution events persisted in a tsdb archive:
// topology churn, capacity upgrades, maintenance drains, and congestion
// onset/clear, as detected at write time by wmparse (see internal/events).
// It is the command-line view of GET /api/v1/events.
//
// Usage:
//
//	wmevents -archive FILE [-map europe] [-type churn,congestion-onset]
//	         [-from RFC3339] [-to RFC3339] [-json]
//
// Events print one per line in time order; -json emits one JSON object per
// line instead. Exit status is 0 when events were printed, 1 when the
// filter matched nothing or the archive holds no event log, 2 on usage or
// archive errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ovhweather/internal/events"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmevents: ")

	var (
		archive = flag.String("archive", "", "tsdb archive `file` (required)")
		mapStr  = flag.String("map", "", "restrict to one map (default: all archived maps)")
		typeStr = flag.String("type", "", "comma-separated event types (churn, upgrade, maintenance, congestion-onset, congestion-clear)")
		fromStr = flag.String("from", "", "window start (RFC3339)")
		toStr   = flag.String("to", "", "window end (RFC3339)")
		asJSON  = flag.Bool("json", false, "emit one JSON object per event instead of text")
	)
	flag.Parse()
	if *archive == "" {
		flag.Usage()
		log.Fatal("missing -archive")
	}
	os.Exit(run(os.Stdout, *archive, *mapStr, *typeStr, *fromStr, *toStr, *asJSON))
}

func run(out *os.File, archive, mapStr, typeStr, fromStr, toStr string, asJSON bool) int {
	var f tsdb.EventFilter
	if mapStr != "" {
		id, err := wmap.ParseMapID(mapStr)
		if err != nil {
			id = wmap.MapID(mapStr) // archives may hold non-backbone ids
		}
		f.Map = id
	}
	if typeStr != "" {
		for _, part := range strings.Split(typeStr, ",") {
			ty, err := events.ParseType(strings.TrimSpace(part))
			if err != nil {
				log.Print(err)
				return 2
			}
			f.Types = append(f.Types, ty)
		}
	}
	var err error
	if f.From, err = parseTime(fromStr); err != nil {
		log.Printf("bad -from: %v", err)
		return 2
	}
	if f.To, err = parseTime(toStr); err != nil {
		log.Printf("bad -to: %v", err)
		return 2
	}

	rd, err := tsdb.OpenFile(archive)
	if err != nil {
		log.Print(err)
		return 2
	}
	defer rd.Close()
	if rd.EventFrames() == 0 {
		log.Print(tsdb.ErrNoEvents)
		return 1
	}
	evs, err := rd.Events(context.Background(), f)
	if err != nil {
		log.Print(err)
		return 2
	}
	if len(evs) == 0 {
		log.Print("no events match the filter")
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(out)
		for i := range evs {
			if err := enc.Encode(&evs[i]); err != nil {
				log.Print(err)
				return 2
			}
		}
		return 0
	}
	for i := range evs {
		ev := &evs[i]
		fmt.Fprintf(out, "%s  %-16s %-9s %s\n",
			ev.Time.Format(time.RFC3339), ev.Type, ev.Map, ev.Summary)
	}
	return 0
}

// parseTime parses an optional RFC3339 flag value; empty means unset.
func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, s)
}
