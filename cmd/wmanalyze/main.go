// Command wmanalyze regenerates every table and figure of the paper from a
// processed dataset (or, with -sim, directly from the simulator when no
// dataset has been generated yet):
//
//	Table 1  — per-map router and link counts with the dedup total
//	Table 2  — file counts and sizes, SVG vs YAML
//	Figure 2 — collection time frames per map
//	Figure 3 — inter-snapshot interval distribution
//	Figure 4 — infrastructure evolution and degree CCDF
//	Figure 5 — load distributions and ECMP imbalance
//	Figure 6 — the AMS-IX link-upgrade case study
//
// -cpuprofile and -memprofile write pprof profiles of the run.
//
// Snapshots come from one of three sources: -data walks the processed YAML
// corpus, -archive reads a columnar tsdb archive written by wmparse -archive
// (same analyses, same output, O(log n) time-range seeks instead of a
// directory walk), and -sim replays the simulator. Table 2 reports on-disk
// file counts, so it needs -data.
//
// Usage:
//
//	wmanalyze -data DIR [-map europe] [-figures all|1,2,4c,...]
//	wmanalyze -archive FILE [-map europe]
//	wmanalyze -sim [-map europe]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ovhweather/internal/analysis"
	"ovhweather/internal/dataset"
	"ovhweather/internal/netsim"
	"ovhweather/internal/peeringdb"
	"ovhweather/internal/prof"
	"ovhweather/internal/status"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// config carries the parsed flags into run.
type config struct {
	dir        string
	archive    string
	useSim     bool
	mapStr     string
	figures    string
	workers    int
	simStep    time.Duration
	cacheBytes int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmanalyze: ")

	var (
		cfg      config
		profiles prof.Profiles
	)
	flag.StringVar(&cfg.dir, "data", "", "processed dataset directory")
	flag.StringVar(&cfg.archive, "archive", "", "columnar tsdb archive (alternative to -data)")
	flag.BoolVar(&cfg.useSim, "sim", false, "analyze the simulator directly instead of a dataset")
	flag.StringVar(&cfg.mapStr, "map", "europe", "map analyzed in Figures 4-6")
	flag.StringVar(&cfg.figures, "figures", "all", "comma-separated subset: 1,2,3,4,5,6 or all; add rollup for the tier-backed weekly fold (-archive only)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "YAML-decoding worker-pool size (1 = sequential); also the -archive block-decode pipeline width")
	flag.DurationVar(&cfg.simStep, "sim-step", 6*time.Hour, "sampling step in -sim mode")
	flag.Int64Var(&cfg.cacheBytes, "block-cache", tsdb.DefaultBlockCacheBytes, "decoded-block cache budget in bytes for -archive reads (0 disables)")
	flag.StringVar(&profiles.CPU, "cpuprofile", "", "write a pprof CPU profile to `file`")
	flag.StringVar(&profiles.Mem, "memprofile", "", "write a pprof heap profile to `file`")
	flag.Parse()
	if cfg.dir == "" && cfg.archive == "" && !cfg.useSim {
		flag.Usage()
		log.Fatal("need -data, -archive, or -sim")
	}

	// Failures below this point route through run() so the deferred profile
	// flush still happens; log.Fatal would exit before the profiles are
	// written.
	stopProf, err := prof.Start(profiles)
	if err != nil {
		log.Fatal(err)
	}
	err = run(cfg)
	code := 0
	if perr := stopProf(); perr != nil {
		log.Print(perr)
		code = 1
	}
	if err != nil {
		log.Print(err)
		code = 1
	}
	os.Exit(code)
}

func run(cfg config) error {
	id, err := wmap.ParseMapID(cfg.mapStr)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, f := range strings.Split(cfg.figures, ",") {
		want[strings.TrimSpace(f)] = true
	}
	sel := func(f string) bool { return want["all"] || want[f] }
	out := os.Stdout

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var store *dataset.Store
	if cfg.dir != "" {
		if store, err = dataset.Open(cfg.dir); err != nil {
			return err
		}
	}
	var rd *tsdb.Reader
	if cfg.archive != "" {
		if rd, err = tsdb.OpenFile(cfg.archive); err != nil {
			return err
		}
		defer rd.Close()
		// The analyses re-stream the same blocks under several lenses
		// (Figures 4-6 each fold the corpus); the cache makes every pass
		// after the first decode-free.
		rd.SetBlockCache(tsdb.NewBlockCache(cfg.cacheBytes))
	}
	sc := netsim.DefaultScenario()
	var sim *netsim.Simulator
	if cfg.useSim {
		if sim, err = netsim.New(sc); err != nil {
			return err
		}
	}

	// stream yields the analyzed map's snapshots between from and to.
	stream := func(from, to time.Time, step time.Duration) analysis.Stream {
		if sim != nil {
			return func(yield func(*wmap.Map) error) error {
				// Each stream replays its own simulator so out-of-order
				// sections stay independent.
				s, err := netsim.New(sc)
				if err != nil {
					return err
				}
				for at := from; !at.After(to); at = at.Add(step) {
					m, err := s.MapAt(id, at)
					if err != nil {
						return err
					}
					if err := yield(m); err != nil {
						return err
					}
				}
				return nil
			}
		}
		if rd != nil {
			return func(yield func(*wmap.Map) error) error {
				// The footer index seeks straight to the overlapping blocks;
				// snapshots outside [from, to] are never decoded. The
				// parallel cursor keeps the next blocks decoding on the
				// worker pool while this goroutine folds the current one.
				cur := rd.CursorParallel(ctx, id, from, to, cfg.workers)
				defer cur.Close()
				for cur.Next() {
					if err := ctx.Err(); err != nil {
						return err
					}
					// The analyses fold each snapshot and move on, so the
					// allocation-free scratch view is safe here.
					if err := yield(cur.MapView()); err != nil {
						return err
					}
				}
				return cur.Err()
			}
		}
		return func(yield func(*wmap.Map) error) error {
			// Snapshots decode on a worker pool; the reorder buffer keeps
			// the yield order chronological, as the analyses require.
			return store.WalkMapsParallel(ctx, id, cfg.workers, func(m *wmap.Map) error {
				if m.Time.Before(from) || m.Time.After(to) {
					return nil
				}
				return yield(m)
			})
		}
	}

	// colStream is the whole-map columnar scan behind the multi-link folds:
	// one ordered pass decoding each block once, instead of re-streaming
	// per-snapshot maps for every lens. Archive-only; nil keeps the other
	// sources on the snapshot stream.
	var colStream func(from, to time.Time) analysis.ColumnStream
	if rd != nil {
		colStream = func(from, to time.Time) analysis.ColumnStream {
			return func(yield func(*analysis.LinkColumns) error) error {
				var lc analysis.LinkColumns
				return rd.GridColumns(ctx, id, from, to, func(c *tsdb.GridChunk) error {
					lc.Times = lc.Times[:0]
					for _, u := range c.Times {
						lc.Times = append(lc.Times, time.Unix(u, 0).UTC())
					}
					lc.Links = lc.Links[:0]
					for i := range c.Links {
						lc.Links = append(lc.Links, analysis.LinkCol{Link: c.Links[i], AB: c.AB[i], BA: c.BA[i]})
					}
					return yield(&lc)
				})
			}
		}
	}

	if sel("1") {
		analysis.Banner(out, "Table 1 — network size per map ("+sc.End.Format("2006-01-02")+")")
		maps, err := snapshotAll(sim, rd, store, sc)
		if err != nil {
			return err
		}
		rows, total := analysis.Table1(maps)
		if err := analysis.WriteTable1(out, rows, total); err != nil {
			return err
		}
	}
	if sel("2") && store != nil {
		analysis.Banner(out, "Table 2 — collected and processed files")
		sum, err := store.Summarize()
		if err != nil {
			return err
		}
		if err := analysis.WriteTable2(out, sum); err != nil {
			return err
		}
		analysis.Banner(out, "Figures 2 and 3 — collection quality")
		for _, mid := range wmap.AllMaps() {
			cov, err := store.CoverageOf(mid, dataset.ExtSVG)
			if err != nil {
				return err
			}
			if sel("2") {
				analysis.WriteCoverage(out, cov)
			}
			dist, err := store.IntervalsOf(mid, dataset.ExtSVG)
			if err != nil {
				return err
			}
			if sel("3") || sel("2") {
				analysis.WriteIntervals(out, dist)
			}
		}
	}
	if sel("4") {
		analysis.Banner(out, "Figure 4 — infrastructure evolution ("+id.Title()+")")
		infra, err := analysis.Infrastructure(stream(sc.Start, sc.End, 7*24*time.Hour))
		if err != nil {
			return err
		}
		analysis.WriteInfraSeries(out, infra, 60*24*time.Hour)
		var last *wmap.Map
		if err := stream(sc.End, sc.End, time.Hour)(func(m *wmap.Map) error { last = m; return nil }); err != nil {
			return err
		}
		if last != nil {
			deg, err := analysis.DegreeCCDF(last)
			if err != nil {
				return err
			}
			analysis.WriteDegreeCCDF(out, deg)
		}
		feed := status.FromScenario(sc)
		corr := analysis.CorrelateMaintenance(infra, feed, 3, 8*24*time.Hour)
		analysis.WriteMaintenance(out, corr)
		growth, err := analysis.SiteGrowthStudy(stream(sc.Start, sc.End, 60*24*time.Hour))
		if err != nil {
			return err
		}
		analysis.WriteSiteGrowth(out, growth, 10)
	}
	if sel("5") {
		analysis.Banner(out, "Figure 5 — links loads ("+id.Title()+")")
		from := sc.Start.AddDate(0, 6, 0)
		to := from.AddDate(0, 0, 7)
		step := cfg.simStep
		if step > time.Hour {
			step = time.Hour
		}
		hourly, err := analysis.HourlyLoads(stream(from, to, step))
		if err != nil {
			return err
		}
		analysis.WriteHourlyLoads(out, hourly)
		loads, err := analysis.LoadCDF(stream(from, to, cfg.simStep))
		if err != nil {
			return err
		}
		analysis.WriteLoadCDF(out, loads)
		var imb *analysis.ImbalanceView
		if colStream != nil {
			imb, err = analysis.ImbalanceCDFColumns(colStream(from, to), wmap.PaperImbalanceOptions())
		} else {
			imb, err = analysis.ImbalanceCDF(stream(from, to, cfg.simStep), wmap.PaperImbalanceOptions())
		}
		if err != nil {
			return err
		}
		analysis.WriteImbalance(out, imb)
		cong, err := analysis.CongestionStudy(stream(from, to, cfg.simStep), analysis.DefaultCongestionOptions())
		if err != nil {
			return err
		}
		analysis.WriteCongestion(out, cong)
		var weekly *analysis.WeeklyView
		if colStream != nil {
			weekly, err = analysis.WeeklyLoadsColumns(colStream(from, from.AddDate(0, 0, 14)))
		} else {
			weekly, err = analysis.WeeklyLoads(stream(from, from.AddDate(0, 0, 14), cfg.simStep))
		}
		if err != nil {
			return err
		}
		analysis.WriteWeekly(out, weekly)
	}
	// The rollup fold is opt-in (not part of "all"): it needs an archive with
	// pre-aggregated tiers, and it demonstrates the long-range path — the
	// whole corpus folds from the 1h tier without decoding a single raw
	// block.
	if want["rollup"] {
		analysis.Banner(out, "Weekly loads from the 1h rollup tier ("+id.Title()+")")
		if rd == nil {
			return fmt.Errorf("-figures rollup needs -archive; rollup tiers live in the tsdb archive")
		}
		bks, err := rd.RollupTotals(ctx, id, time.Hour, time.Time{}, time.Time{})
		switch {
		case errors.Is(err, tsdb.ErrNoRollup):
			fmt.Fprintln(out, "archive carries no 1h rollup tier; rewrite it with wmparse -archive to add one")
		case err != nil:
			return err
		default:
			aggs := make([]analysis.HourAgg, len(bks))
			for i, b := range bks {
				aggs[i] = analysis.HourAgg{Start: b.Start, Count: b.Samples, Sum: b.Sum, Min: b.Min, Max: b.Max}
			}
			v, err := analysis.WeeklyMeans(aggs)
			if err != nil {
				return err
			}
			analysis.WriteWeeklyMeans(out, v)
		}
	}
	if sel("6") {
		analysis.Banner(out, "Figure 6 — link upgrade study ("+sc.Upgrade.Peering+")")
		db := peeringdb.New()
		db.Announce(peeringdb.Record{
			Peering: sc.Upgrade.Peering, Network: "OVH",
			Gbps: sc.Upgrade.GbpsBefore, Updated: sc.Start,
		})
		db.Announce(peeringdb.Record{
			Peering: sc.Upgrade.Peering, Network: "OVH",
			Gbps: sc.Upgrade.GbpsAfter, Updated: sc.Upgrade.DBUpdated,
			Comment: "new 100G link",
		})
		from := sc.Upgrade.Added.AddDate(0, 0, -10)
		to := sc.Upgrade.Activated.AddDate(0, 0, 10)
		v, err := analysis.UpgradeStudy(stream(from, to, 2*time.Hour), sc.Upgrade.Peering, db)
		if err != nil {
			return err
		}
		analysis.WriteUpgrade(out, v)
	}
	fmt.Fprintln(out)
	return nil
}

// snapshotAll fetches all four maps at the scenario end, from the simulator,
// the archive, or the dataset. The archive and dataset branches both take
// each map's last snapshot, so the two sources agree.
func snapshotAll(sim *netsim.Simulator, rd *tsdb.Reader, store *dataset.Store, sc netsim.Scenario) ([]*wmap.Map, error) {
	if sim != nil {
		return sim.SnapshotAt(sc.End)
	}
	var out []*wmap.Map
	for _, id := range wmap.AllMaps() {
		if rd != nil {
			_, last, ok := rd.Bounds(id)
			if !ok {
				continue
			}
			m, err := rd.SnapshotAt(id, last)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			continue
		}
		entries, err := store.Index(id, dataset.ExtYAML)
		if err != nil {
			return nil, err
		}
		if len(entries) == 0 {
			continue
		}
		m, err := store.LoadMap(id, entries[len(entries)-1].Time)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no processed snapshots found; run wmparse first")
	}
	return out, nil
}
