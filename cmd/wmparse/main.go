// Command wmparse runs the paper's processing pipeline over a dataset:
// every collected SVG snapshot is parsed (Algorithm 1), geometrically
// attributed (Algorithm 2), sanity-checked, and written out as a YAML file
// next to the original. Unprocessable files are counted by failure class,
// reproducing the paper's accounting of invalid and incomplete snapshots.
//
// Snapshots are independent, so the pipeline fans out to a worker pool;
// -workers 1 reproduces the sequential behaviour exactly. Ctrl-C cancels
// the run cleanly: no new snapshots are scheduled, in-flight workers drain,
// and the store is left resumable (atomic writes, no half-written YAML).
//
// Parsing defaults to the zero-allocation fast lexer; -std-decoder forces
// the encoding/xml reference path, which must produce byte-identical YAML.
// -cpuprofile and -memprofile write pprof profiles of the run.
//
// -archive FILE additionally streams every processed snapshot — in
// chronological order per map, including snapshots already processed by an
// earlier run — into a columnar tsdb archive (see internal/tsdb), the input
// of wmanalyze -archive and the wmserve query API. The archive also carries
// pre-aggregated rollup tiers for long-range queries; -rollups picks the
// tier resolutions (default 1h,24h; "off" disables them). Evolution-event
// detectors (topology churn, capacity upgrades, maintenance drains,
// congestion onset/clear — see internal/events) run at write time and
// persist their event log alongside the series; -events=false turns them
// off. The log feeds wmevents, GET /api/v1/events, and wmserve's SSE
// stream.
//
// -follow (requires -archive) turns the one-shot run into a live ingester:
// the archive is opened in append mode (resuming whatever a previous run —
// even one that crashed mid-append — committed), and after the initial
// catch-up pass the dataset directory is re-scanned every -poll interval
// for snapshots newer than each map's archived tail. Each cycle ends with
// Writer.Sync, so a concurrent `wmserve -archive -live` adopts the new
// blocks within its refresh interval. Ctrl-C closes the archive cleanly
// into the normal footered form.
//
// Usage:
//
//	wmparse -data DIR [-maps europe,...] [-workers N] [-threshold 40]
//	        [-archive FILE] [-rollups 1h,24h] [-events] [-follow] [-poll 2s]
//	        [-std-decoder] [-cpuprofile FILE] [-memprofile FILE] [-quiet]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/prof"
	"ovhweather/internal/svg"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmparse: ")

	var (
		dir        = flag.String("data", "", "dataset directory (required)")
		mapsStr    = flag.String("maps", "europe,world,north-america,asia-pacific", "maps to process")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size (1 = sequential)")
		threshold  = flag.Float64("threshold", 40, "label attribution distance threshold (px)")
		colors     = flag.Bool("verify-colors", false, "cross-check load percentages against arrow colors")
		stdDecoder = flag.Bool("std-decoder", false, "parse with encoding/xml instead of the fast lexer")
		archive    = flag.String("archive", "", "also write a columnar tsdb archive to `file`")
		rollups    = flag.String("rollups", "1h,24h", "comma-separated rollup tier resolutions for -archive (off disables)")
		evDetect   = flag.Bool("events", true, "run the evolution-event detectors and persist their event log in -archive")
		follow     = flag.Bool("follow", false, "keep running: append snapshots to the archive as they land in -data")
		poll       = flag.Duration("poll", 2*time.Second, "directory re-scan interval in -follow mode")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		profiles   prof.Profiles
	)
	flag.StringVar(&profiles.CPU, "cpuprofile", "", "write a pprof CPU profile to `file`")
	flag.StringVar(&profiles.Mem, "memprofile", "", "write a pprof heap profile to `file`")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		log.Fatal("missing -data")
	}
	if *follow && *archive == "" {
		log.Fatal("-follow requires -archive")
	}
	svg.UseStdDecoder = *stdDecoder

	// Failures below this point route through run() so the deferred profile
	// flush still happens; log.Fatal would exit before the profiles are
	// written.
	stopProf, err := prof.Start(profiles)
	if err != nil {
		log.Fatal(err)
	}
	code, err := run(*dir, *mapsStr, *workers, *threshold, *colors, *quiet, *archive, *rollups, *evDetect, *follow, *poll)
	if perr := stopProf(); perr != nil {
		log.Print(perr)
		if code == 0 {
			code = 1
		}
	}
	if err != nil {
		log.Print(err)
		code = 1
	}
	os.Exit(code)
}

// parseRollups turns the -rollups flag into tier resolutions. "off", "none",
// and the empty string disable rollup maintenance (an explicit zero-argument
// SetRollupResolutions call).
func parseRollups(s string) ([]time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "none":
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-rollups: %w", err)
		}
		out = append(out, d)
	}
	return out, nil
}

func run(dir, mapsStr string, workers int, threshold float64, colors, quiet bool, archive, rollups string, evDetect, follow bool, poll time.Duration) (int, error) {
	store, err := dataset.Open(dir)
	if err != nil {
		return 1, err
	}
	opt := extract.DefaultOptions()
	opt.LabelThreshold = threshold
	opt.VerifyColors = colors

	ids := make([]wmap.MapID, 0, 4)
	for _, s := range strings.Split(mapsStr, ",") {
		id, err := wmap.ParseMapID(s)
		if err != nil {
			return 1, err
		}
		ids = append(ids, id)
	}

	// The archive writer taps the pipeline through ProcessOptions.Emit, which
	// delivers each map's snapshots in chronological order — the contract
	// Writer.Append enforces. Follow mode appends to a live archive instead
	// of rebuilding one, resuming from whatever a previous run committed.
	var arch *tsdb.Writer
	if archive != "" {
		if follow {
			arch, err = tsdb.OpenAppend(archive)
		} else {
			arch, err = tsdb.Create(archive)
		}
		if err != nil {
			return 1, err
		}
		defer arch.Close()
		// Rollup tiers are configured before the first append; OpenAppend
		// replays the committed tail under the same tiers on first use.
		tiers, err := parseRollups(rollups)
		if err != nil {
			return 1, err
		}
		if err := arch.SetRollupResolutions(tiers...); err != nil {
			return 1, err
		}
		// Event detection is on by default; -events=false strips the event
		// log entirely (the archive stays readable by every consumer).
		if !evDetect {
			if err := arch.SetEventDetection(false, nil); err != nil {
				return 1, err
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exitCode := 0
	// pass sweeps every map once. In follow mode later passes set EmitFrom to
	// each map's archived tail, so a quiet poll costs one directory scan and
	// re-processes nothing; reports are only logged when work happened.
	pass := func(first bool) error {
		for _, id := range ids {
			id := id
			progress := func(done, total int) {
				if !quiet && first && total > 0 && done%500 == 0 {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d", id, done, total)
				}
			}
			popt := dataset.ProcessOptions{
				Workers:  workers,
				Extract:  opt,
				Progress: progress,
			}
			if arch != nil {
				popt.Emit = arch.Append
				// A resumed live archive already holds a prefix of the series;
				// emitting it again would (rightly) trip Append's ErrOutOfOrder.
				if follow {
					if lt, ok := arch.LastTime(id); ok {
						popt.EmitFrom = lt
					}
				}
			}
			rep, err := store.ProcessMapParallel(ctx, id, popt)
			if !quiet && first {
				fmt.Fprintln(os.Stderr)
			}
			if err != nil {
				if errors.Is(err, context.Canceled) {
					log.Printf("%s (interrupted)", rep)
					return errors.New("interrupted")
				}
				return err
			}
			if first || rep.Total() > 0 {
				log.Print(rep)
			}
			if rep.Failed() > 0 {
				exitCode = 1
			}
		}
		return nil
	}

	if err := pass(true); err != nil {
		return 1, err
	}
	if follow {
		// Publish the catch-up pass, then tail the directory until Ctrl-C.
		if err := arch.Sync(); err != nil {
			return 1, fmt.Errorf("archive: %w", err)
		}
		if !quiet {
			st := arch.Stats()
			log.Printf("following %s every %s (archive %s at %d snapshots, commit version %d)",
				dir, poll, archive, st.Snapshots, arch.Version())
		}
		tk := time.NewTicker(poll)
		defer tk.Stop()
	followLoop:
		for {
			select {
			case <-ctx.Done():
				break followLoop
			case <-tk.C:
				if err := pass(false); err != nil {
					return 1, err
				}
				if err := arch.Sync(); err != nil {
					return 1, fmt.Errorf("archive: %w", err)
				}
			}
		}
		log.Print("interrupted, closing archive")
	}
	if arch != nil {
		if err := arch.Close(); err != nil {
			return 1, fmt.Errorf("archive: %w", err)
		}
		st := arch.Stats()
		log.Printf("archive %s: %d snapshots, %d blocks, %d topologies, %d bytes",
			archive, st.Snapshots, st.Blocks, st.Topologies, st.Bytes)
	}
	return exitCode, nil
}
