// Command wmparse runs the paper's processing pipeline over a dataset:
// every collected SVG snapshot is parsed (Algorithm 1), geometrically
// attributed (Algorithm 2), sanity-checked, and written out as a YAML file
// next to the original. Unprocessable files are counted by failure class,
// reproducing the paper's accounting of invalid and incomplete snapshots.
//
// Snapshots are independent, so the pipeline fans out to a worker pool;
// -workers 1 reproduces the sequential behaviour exactly. Ctrl-C cancels
// the run cleanly: no new snapshots are scheduled, in-flight workers drain,
// and the store is left resumable (atomic writes, no half-written YAML).
//
// Usage:
//
//	wmparse -data DIR [-maps europe,...] [-workers N] [-threshold 40] [-quiet]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmparse: ")

	var (
		dir       = flag.String("data", "", "dataset directory (required)")
		mapsStr   = flag.String("maps", "europe,world,north-america,asia-pacific", "maps to process")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size (1 = sequential)")
		threshold = flag.Float64("threshold", 40, "label attribution distance threshold (px)")
		colors    = flag.Bool("verify-colors", false, "cross-check load percentages against arrow colors")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		log.Fatal("missing -data")
	}
	store, err := dataset.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	opt := extract.DefaultOptions()
	opt.LabelThreshold = *threshold
	opt.VerifyColors = *colors

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exitCode := 0
	for _, s := range strings.Split(*mapsStr, ",") {
		id, err := wmap.ParseMapID(s)
		if err != nil {
			log.Fatal(err)
		}
		progress := func(done, total int) {
			if !*quiet && total > 0 && done%500 == 0 {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d", id, done, total)
			}
		}
		rep, err := store.ProcessMapParallel(ctx, id, dataset.ProcessOptions{
			Workers:  *workers,
			Extract:  opt,
			Progress: progress,
		})
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Printf("%s (interrupted)", rep)
				log.Fatal("interrupted")
			}
			log.Fatal(err)
		}
		log.Print(rep)
		if rep.Failed() > 0 {
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}
