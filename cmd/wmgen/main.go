// Command wmgen generates a synthetic OVH Weather dataset: it runs the
// backbone simulator over a time range and writes one SVG snapshot per map
// per step into a dataset directory, optionally injecting the malformed
// files the paper reports and honouring the collection outage plan.
//
// Usage:
//
//	wmgen -out DIR [-start RFC3339] [-end RFC3339] [-step 5m]
//	      [-maps europe,world] [-faults] [-plan]
//
// Generating the full two-year range at five-minute resolution produces
// hundreds of thousands of files; the defaults cover a week so a first run
// finishes quickly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/dataset"
	"ovhweather/internal/netsim"
	"ovhweather/internal/render"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmgen: ")

	var (
		out      = flag.String("out", "", "dataset output directory (required)")
		startStr = flag.String("start", "2020-07-01T00:00:00Z", "range start (RFC3339)")
		endStr   = flag.String("end", "2020-07-08T00:00:00Z", "range end (RFC3339)")
		step     = flag.Duration("step", 5*time.Minute, "snapshot interval")
		mapsStr  = flag.String("maps", "europe,world,north-america,asia-pacific", "comma-separated maps")
		faults   = flag.Bool("faults", false, "inject a small population of malformed files")
		usePlan  = flag.Bool("plan", false, "apply the paper's collection outage plan (Figure 2 gaps)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	start, err := time.Parse(time.RFC3339, *startStr)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	end, err := time.Parse(time.RFC3339, *endStr)
	if err != nil {
		log.Fatalf("bad -end: %v", err)
	}
	var ids []wmap.MapID
	for _, s := range strings.Split(*mapsStr, ",") {
		id, err := wmap.ParseMapID(s)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	store, err := dataset.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := netsim.New(netsim.DefaultScenario())
	if err != nil {
		log.Fatal(err)
	}
	cache := render.NewSceneCache(render.Options{})
	plan := collect.Plan{}
	if *usePlan {
		plan = collect.DefaultPlan()
	}

	written, skipped, faulty := 0, 0, 0
	steps := int(end.Sub(start)/(*step)) + 1
	var sb strings.Builder
	for i, t := 0, start; !t.After(end); i, t = i+1, t.Add(*step) {
		for _, id := range ids {
			if *usePlan && !plan.ShouldCollect(id, t) {
				skipped++
				continue
			}
			m, err := sim.MapAt(id, t)
			if err != nil {
				log.Fatal(err)
			}
			sb.Reset()
			kind := render.FaultNone
			if *faults {
				kind = faultFor(id, t)
			}
			if kind == render.FaultNone {
				err = cache.WriteSVGCached(&sb, m)
			} else {
				faulty++
				var scn *render.Scene
				scn, err = cache.Scene(m)
				if err == nil {
					err = render.WriteFaultySVG(&sb, scn, m, kind)
				}
			}
			if err != nil {
				log.Fatal(err)
			}
			if err := store.WriteSnapshot(id, t, dataset.ExtSVG, []byte(sb.String())); err != nil {
				log.Fatal(err)
			}
			written++
		}
		if !*quiet && i%2000 == 0 {
			fmt.Fprintf(os.Stderr, "\r%6.1f%% (%d files)", 100*float64(i)/float64(steps), written)
		}
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	log.Printf("wrote %d snapshots (%d skipped by plan, %d deliberately faulty) to %s",
		written, skipped, faulty, *out)
}

// faultFor reproduces the paper's tiny unprocessable-file population: fewer
// than one file in a thousand, split across the observed failure modes.
func faultFor(id wmap.MapID, t time.Time) render.FaultKind {
	h := uint64(t.Unix()) * 0x9e3779b97f4a7c15
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	switch {
	case h%1997 == 0:
		return render.FaultMalformedAttribute
	case h%2039 == 1:
		return render.FaultMissingRouters
	case h%2053 == 2:
		return render.FaultTruncated
	default:
		return render.FaultNone
	}
}
