// Command wmlint runs the repo's custom analyzer suite (internal/lint):
// machine-enforced hot-path and correctness invariants — pooled buffers
// are returned, //wm:hotpath functions stay allocation-clean, tsdb
// corruption is typed, request paths honor their context, and shard
// state stays behind its lock. See DESIGN.md §15.
//
// Two modes, one binary:
//
//	wmlint ./...                              # standalone, loads packages itself
//	go vet -vettool=$(which wmlint) ./...     # vet unitchecker protocol
//
// The vet mode implements the cmd/go vettool contract (-flags, -V=full,
// and the single *.cfg argument) without depending on x/tools; it also
// analyzes test files, which the standalone mode skips.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ovhweather/internal/lint"
)

func main() {
	// The vet protocol probes tools with -flags and -V=full before ever
	// passing a config; handle those before flag parsing so unknown
	// future probe flags fail loudly rather than silently.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			// JSON list of tool flags for cmd/go's flag validation.
			fmt.Println(`[]`)
			return
		case strings.HasPrefix(args[0], "-V"):
			lint.PrintVersion()
			return
		case strings.HasSuffix(args[0], ".cfg"):
			lint.UnitcheckerMain(args[0], lint.All())
			return
		}
	}

	var (
		checks = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wmlint [-checks a,b] packages...\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which wmlint) packages...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	analyzers := lint.ByName(*checks)
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "wmlint: no analyzers match -checks=%s\n", *checks)
		os.Exit(2)
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wmlint: %v\n", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(lint.FormatDiagnostic(pkg.Fset, d))
			found++
		}
	}
	if found > 0 {
		os.Exit(1)
	}
}
