// Command wmcollect polls a weather-map website every interval and archives
// the SVG snapshots into a dataset directory, the role of the paper's
// two-year crawler.
//
// Usage:
//
//	wmcollect -url http://localhost:8080 -out DIR [-interval 1s]
//	          [-count N] [-maps europe,...] [-plan]
//
// Snapshots are stamped with the collector's wall-clock time unless the
// server's virtual time is desired; pair it with wmserve and match
// -interval to wmserve's -tick to collect one snapshot per virtual step.
package main

import (
	"flag"
	"log"
	"strings"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/dataset"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmcollect: ")

	var (
		url      = flag.String("url", "http://localhost:8080", "weather-map base URL")
		out      = flag.String("out", "", "dataset output directory (required)")
		interval = flag.Duration("interval", time.Second, "polling interval")
		count    = flag.Int("count", 0, "number of polls (0 = run forever)")
		mapsStr  = flag.String("maps", "europe,world,north-america,asia-pacific", "maps to collect")
		usePlan  = flag.Bool("plan", false, "apply the paper's outage plan")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		log.Fatal("missing -out")
	}
	var ids []wmap.MapID
	for _, s := range strings.Split(*mapsStr, ",") {
		id, err := wmap.ParseMapID(s)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	store, err := dataset.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	plan := collect.Plan{}
	if *usePlan {
		plan = collect.DefaultPlan()
	}
	col := &collect.Collector{
		BaseURL: *url,
		Store:   store,
		Plan:    plan,
		Maps:    ids,
		Retries: 2,
	}

	var total collect.Stats
	for i := 0; *count == 0 || i < *count; i++ {
		at := time.Now().UTC().Truncate(time.Minute)
		st, err := col.CollectAt(at)
		if err != nil {
			log.Fatal(err)
		}
		total.Fetched += st.Fetched
		total.Skipped += st.Skipped
		total.Failed += st.Failed
		if st.Failed > 0 {
			log.Printf("%s: %d fetch failure(s)", at.Format(time.RFC3339), st.Failed)
		}
		if *count == 0 || i < *count-1 {
			time.Sleep(*interval)
		}
	}
	log.Printf("collected %d snapshots (%d skipped, %d failed) into %s",
		total.Fetched, total.Skipped, total.Failed, *out)
}
