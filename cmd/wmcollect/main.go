// Command wmcollect polls a weather-map website every interval and archives
// the SVG snapshots into a dataset directory, the role of the paper's
// two-year crawler.
//
// Usage:
//
//	wmcollect -url http://localhost:8080 -out DIR [-interval 1s]
//	          [-count N] [-maps europe,...] [-plan] [-archive FILE]
//
// Snapshots are stamped with the collector's wall-clock time unless the
// server's virtual time is desired; pair it with wmserve and match
// -interval to wmserve's -tick to collect one snapshot per virtual step.
//
// -archive additionally runs the extraction pipeline inline: every stored
// SVG is parsed and attributed on the spot and appended to a live tsdb
// archive (tsdb.OpenAppend), with a durable commit after each poll cycle —
// so a concurrent `wmserve -archive -live` serves the crawl as it happens,
// with no wmparse batch pass in between. Unparsable snapshots are counted
// and skipped, exactly as the batch pipeline would classify them later.
// SIGINT/SIGTERM closes the archive into the normal footered form.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ovhweather/internal/collect"
	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmcollect: ")

	var (
		url      = flag.String("url", "http://localhost:8080", "weather-map base URL")
		out      = flag.String("out", "", "dataset output directory (required)")
		interval = flag.Duration("interval", time.Second, "polling interval")
		count    = flag.Int("count", 0, "number of polls (0 = run forever)")
		mapsStr  = flag.String("maps", "europe,world,north-america,asia-pacific", "maps to collect")
		usePlan  = flag.Bool("plan", false, "apply the paper's outage plan")
		archive  = flag.String("archive", "", "also extract and append each snapshot to a live tsdb archive at `file`")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		log.Fatal("missing -out")
	}
	var ids []wmap.MapID
	for _, s := range strings.Split(*mapsStr, ",") {
		id, err := wmap.ParseMapID(s)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	store, err := dataset.Open(*out)
	if err != nil {
		log.Fatal(err)
	}
	plan := collect.Plan{}
	if *usePlan {
		plan = collect.DefaultPlan()
	}
	col := &collect.Collector{
		BaseURL: *url,
		Store:   store,
		Plan:    plan,
		Maps:    ids,
		Retries: 2,
	}

	// The live-ingest hook: one attribution cache and scan scratch shared
	// across the whole crawl (OnStored is called on the poll goroutine, so
	// no locking), feeding a live archive committed once per cycle.
	var (
		arch     *tsdb.Writer
		dropped  int
		appended int
	)
	if *archive != "" {
		arch, err = tsdb.OpenAppend(*archive)
		if err != nil {
			log.Fatal(err)
		}
		opt := extract.DefaultOptions()
		cache := extract.NewAttributionCache(opt)
		var res extract.ScanResult
		col.OnStored = func(id wmap.MapID, t time.Time, data []byte) error {
			if last, ok := arch.LastTime(id); ok && !t.After(last) {
				return nil // resumed archive already has this poll's timestamp
			}
			if err := extract.ScanBytesInto(&res, data, extract.ScanOptions{}); err != nil {
				dropped++
				return nil // unparsable snapshot: the batch pipeline would classify it, not abort
			}
			m, err := cache.Attribute(&res, id, t)
			if err != nil {
				dropped++
				return nil
			}
			if err := arch.Append(m); err != nil {
				return err
			}
			appended++
			return nil
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var total collect.Stats
	code := 0
poll:
	for i := 0; *count == 0 || i < *count; i++ {
		at := time.Now().UTC().Truncate(time.Minute)
		st, err := col.CollectAt(at)
		if err != nil {
			log.Print(err)
			code = 1
			break
		}
		total.Fetched += st.Fetched
		total.NotModified += st.NotModified
		total.Skipped += st.Skipped
		total.Failed += st.Failed
		if st.Failed > 0 {
			log.Printf("%s: %d fetch failure(s)", at.Format(time.RFC3339), st.Failed)
		}
		if arch != nil {
			// One durable commit per cycle: everything this poll appended
			// becomes visible to tailing readers and crash recovery together.
			if err := arch.Sync(); err != nil {
				log.Print(err)
				code = 1
				break
			}
		}
		if *count == 0 || i < *count-1 {
			select {
			case <-ctx.Done():
				log.Print("signal received, stopping")
				break poll
			case <-time.After(*interval):
			}
		}
	}
	if arch != nil {
		if err := arch.Close(); err != nil {
			log.Print(err)
			code = 1
		} else {
			s := arch.Stats()
			log.Printf("archive %s: %d snapshots appended this run (%d unparsable dropped), %d total, %d blocks",
				*archive, appended, dropped, s.Snapshots, s.Blocks)
		}
	}
	log.Printf("collected %d snapshots (%d from cache, %d skipped, %d failed) into %s",
		total.Fetched, total.NotModified, total.Skipped, total.Failed, *out)
	os.Exit(code)
}
