// Command wmdiff compares two processed YAML snapshots and prints the
// topology changes between them: routers and peerings that appeared or
// vanished, link-count deltas per endpoint pair, and how many link loads
// moved. It is the inspection tool behind the evolution analysis — point it
// at two files straddling a Figure 4a step to see exactly which routers were
// involved.
//
// Usage:
//
//	wmdiff OLD.yaml NEW.yaml
//
// Exit status is 0 when the topologies are identical, 1 when they differ,
// 2 on usage or file errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ovhweather/internal/extract"
	"ovhweather/internal/wmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wmdiff: ")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wmdiff OLD.yaml NEW.yaml")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old := load(flag.Arg(0))
	new := load(flag.Arg(1))
	if old.ID != new.ID {
		log.Printf("warning: comparing different maps (%s vs %s)", old.ID, new.ID)
	}

	d := wmap.Compare(old, new)
	fmt.Printf("%s: %s -> %s\n", old.ID, old.Time.Format("2006-01-02 15:04"), new.Time.Format("2006-01-02 15:04"))
	if d.Empty() {
		fmt.Printf("topology unchanged (%d load change(s))\n", d.LoadChanges)
		return
	}
	for _, n := range d.NodesAdded {
		fmt.Printf("+ node %s (%s)\n", n.Name, n.Kind)
	}
	for _, n := range d.NodesRemoved {
		fmt.Printf("- node %s (%s)\n", n.Name, n.Kind)
	}
	for _, l := range d.LinksAdded {
		fmt.Printf("+ %d link(s) %s %s <-> %s %s\n", l.Count, l.A, l.LabelA, l.LabelB, l.B)
	}
	for _, l := range d.LinksRemoved {
		fmt.Printf("- %d link(s) %s %s <-> %s %s\n", l.Count, l.A, l.LabelA, l.LabelB, l.B)
	}
	fmt.Printf("%d load change(s) among persisting links\n", d.LoadChanges)
	os.Exit(1)
}

func load(path string) *wmap.Map {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	m, err := extract.UnmarshalYAML(data)
	if err != nil {
		log.Printf("%s: %v", path, err)
		os.Exit(2)
	}
	return m
}
