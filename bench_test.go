// Benchmarks regenerating every table and figure of the paper, plus
// throughput benchmarks for the two core algorithms and ablations of the
// design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Shape fidelity (who wins, approximate factors, crossovers) is asserted by
// the unit and integration tests; the benchmarks here measure the cost of
// producing each result and print the headline numbers once per run.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ovhweather/internal/analysis"
	"ovhweather/internal/collect"
	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/netsim"
	"ovhweather/internal/peeringdb"
	"ovhweather/internal/render"
	"ovhweather/internal/status"
	"ovhweather/internal/svg"
	"ovhweather/internal/wmap"
)

// fixture holds expensive shared state built once per benchmark binary run.
type fixture struct {
	sc        netsim.Scenario
	endMaps   []*wmap.Map // all four maps at the scenario end
	europeSVG []byte      // rendered Europe snapshot at the end state
	europeRes *extract.ScanResult
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		fix.sc = netsim.DefaultScenario()
		sim, err := netsim.New(fix.sc)
		if err != nil {
			panic(err)
		}
		fix.endMaps, err = sim.SnapshotAt(fix.sc.End)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := render.Render(&buf, fix.endMaps[0], render.Options{}); err != nil {
			panic(err)
		}
		fix.europeSVG = buf.Bytes()
		fix.europeRes, err = extract.Scan(bytes.NewReader(fix.europeSVG))
		if err != nil {
			panic(err)
		}
	})
	return &fix
}

// simStream yields Europe snapshots between from and to at the given step,
// each bench iteration replaying its own simulator.
func simStream(sc netsim.Scenario, from, to time.Time, step time.Duration) analysis.Stream {
	return func(yield func(*wmap.Map) error) error {
		sim, err := netsim.New(sc)
		if err != nil {
			return err
		}
		for at := from; !at.After(to); at = at.Add(step) {
			m, err := sim.MapAt(wmap.Europe, at)
			if err != nil {
				return err
			}
			if err := yield(m); err != nil {
				return err
			}
		}
		return nil
	}
}

// BenchmarkTable1MapSummary regenerates Table 1: the per-map router and
// link counts with the router-dedup total on the final observation day.
func BenchmarkTable1MapSummary(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	var total analysis.Table1Row
	for i := 0; i < b.N; i++ {
		_, total = analysis.Table1(f.endMaps)
	}
	b.ReportMetric(float64(total.Routers), "routers")
}

// BenchmarkTable2DatasetSummary regenerates Table 2 over a small on-disk
// dataset: index walk, file counting and size accounting.
func BenchmarkTable2DatasetSummary(b *testing.B) {
	f := getFixture(b)
	store, err := dataset.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		at := f.sc.Start.Add(time.Duration(i) * 5 * time.Minute)
		if err := store.WriteSnapshot(wmap.Europe, at, dataset.ExtSVG, f.europeSVG); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Summarize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Timeframes computes the collection segments of Figure 2 from
// a two-year timestamp list with gaps.
func BenchmarkFig2Timeframes(b *testing.B) {
	f := getFixture(b)
	plan := defaultPlanTimes(f.sc, wmap.Europe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := dataset.CoverageOfTimes(wmap.Europe, plan)
		if cov.Count == 0 {
			b.Fatal("no coverage")
		}
	}
}

// BenchmarkFig3GapDistribution computes the inter-snapshot interval
// distribution of Figure 3 over the same two-year list.
func BenchmarkFig3GapDistribution(b *testing.B) {
	f := getFixture(b)
	plan := defaultPlanTimes(f.sc, wmap.Europe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := dataset.IntervalsOfTimes(wmap.Europe, plan)
		if dist.Intervals == 0 {
			b.Fatal("no intervals")
		}
	}
}

// defaultPlanTimes simulates a two-year 5-minute collection with the
// paper's outage plan applied, returning the collected timestamps.
func defaultPlanTimes(sc netsim.Scenario, id wmap.MapID) []time.Time {
	// Computing the full 220k-step schedule once per call keeps the
	// benchmark focused on the analysis, not the plan evaluation.
	planOnce.Do(func() {
		plan := defaultPlan()
		for t := sc.Start; !t.After(sc.End); t = t.Add(5 * time.Minute) {
			if plan.ShouldCollect(id, t) {
				planTimes = append(planTimes, t)
			}
		}
	})
	return planTimes
}

var (
	planOnce  sync.Once
	planTimes []time.Time
)

// BenchmarkFig4aRouterEvolution regenerates the Figure 4a router-count
// series (weekly sampling over the full range) and its change events.
func BenchmarkFig4aRouterEvolution(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infra, err := analysis.Infrastructure(simStream(f.sc, f.sc.Start, f.sc.End, 7*24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if got := len(infra.RouterEvents(3)); got < 4 {
			b.Fatalf("router events = %d", got)
		}
	}
}

// BenchmarkFig4bLinkEvolution regenerates the Figure 4b link series.
func BenchmarkFig4bLinkEvolution(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infra, err := analysis.Infrastructure(simStream(f.sc, f.sc.Start, f.sc.End, 7*24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		last, _ := infra.Internal.Last()
		if last.V != 744 {
			b.Fatalf("internal end = %v", last.V)
		}
	}
}

// BenchmarkFig4cDegreeCCDF regenerates the Figure 4c degree CCDF.
func BenchmarkFig4cDegreeCCDF(b *testing.B) {
	f := getFixture(b)
	m := f.endMaps[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.DegreeCCDF(m)
		if err != nil {
			b.Fatal(err)
		}
		if v.FracDegree1 <= 0.2 || v.FracOver20 <= 0.2 {
			b.Fatalf("degree shape off: %+v", v)
		}
	}
}

// BenchmarkFig5aHourlyLoads regenerates the Figure 5a hour-of-day load
// summary over two days of hourly Europe snapshots.
func BenchmarkFig5aHourlyLoads(b *testing.B) {
	f := getFixture(b)
	from := f.sc.Start.AddDate(0, 6, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.HourlyLoads(simStream(f.sc, from, from.AddDate(0, 0, 2), time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if p := v.PeakHour(); p < 18 || p > 22 {
			b.Fatalf("peak hour %d", p)
		}
	}
}

// BenchmarkFig5bLoadCDF regenerates the Figure 5b load distribution.
func BenchmarkFig5bLoadCDF(b *testing.B) {
	f := getFixture(b)
	from := f.sc.Start.AddDate(0, 9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.LoadCDF(simStream(f.sc, from, from.AddDate(0, 0, 2), 3*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if v.P75All >= 33 {
			b.Fatalf("p75 = %v", v.P75All)
		}
	}
}

// BenchmarkFig5cImbalanceCDF regenerates the Figure 5c imbalance CDFs with
// the paper's filters.
func BenchmarkFig5cImbalanceCDF(b *testing.B) {
	f := getFixture(b)
	from := f.sc.Start.AddDate(0, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.ImbalanceCDF(simStream(f.sc, from, from.AddDate(0, 0, 1), 6*time.Hour), wmap.PaperImbalanceOptions())
		if err != nil {
			b.Fatal(err)
		}
		if v.IntWithin1 <= 0.6 {
			b.Fatalf("imbalance shape off: %+v", v)
		}
	}
}

// BenchmarkFig6UpgradeStudy regenerates the Figure 6 case study including
// the PeeringDB cross-check.
func BenchmarkFig6UpgradeStudy(b *testing.B) {
	f := getFixture(b)
	db := peeringdb.New()
	db.Announce(peeringdb.Record{Peering: f.sc.Upgrade.Peering, Network: "OVH", Gbps: f.sc.Upgrade.GbpsBefore, Updated: f.sc.Start})
	db.Announce(peeringdb.Record{Peering: f.sc.Upgrade.Peering, Network: "OVH", Gbps: f.sc.Upgrade.GbpsAfter, Updated: f.sc.Upgrade.DBUpdated})
	from := f.sc.Upgrade.Added.AddDate(0, 0, -10)
	to := f.sc.Upgrade.Activated.AddDate(0, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.UpgradeStudy(simStream(f.sc, from, to, 6*time.Hour), f.sc.Upgrade.Peering, db)
		if err != nil {
			b.Fatal(err)
		}
		if v.DBUpdate == nil || !v.CapacityOK {
			b.Fatalf("upgrade study incomplete: %+v", v)
		}
	}
}

// BenchmarkAlgorithm1Scan measures the SVG parsing throughput of Algorithm
// 1 on a full Europe-scale document.
func BenchmarkAlgorithm1Scan(b *testing.B) {
	f := getFixture(b)
	b.SetBytes(int64(len(f.europeSVG)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := extract.Scan(bytes.NewReader(f.europeSVG))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Links) != len(f.endMaps[0].Links) {
			b.Fatalf("links = %d", len(res.Links))
		}
	}
}

// BenchmarkAlgorithm2Attribute measures the geometric attribution
// throughput of Algorithm 2 on Europe-scale element lists.
func BenchmarkAlgorithm2Attribute(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := extract.Attribute(f.europeRes, wmap.Europe, f.sc.End, extract.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Links) != len(f.endMaps[0].Links) {
			b.Fatalf("links = %d", len(m.Links))
		}
	}
}

// BenchmarkEndToEndExtract measures the full pipeline: Algorithm 1 +
// Algorithm 2 + sanity checks on one Europe snapshot, the per-file cost of
// processing the 542,049-file dataset.
func BenchmarkEndToEndExtract(b *testing.B) {
	f := getFixture(b)
	b.SetBytes(int64(len(f.europeSVG)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.ExtractSVG(bytes.NewReader(f.europeSVG), wmap.Europe, f.sc.End, extract.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderEurope measures rendering a Europe snapshot with a warm
// scene cache — the generator's steady-state cost per snapshot.
func BenchmarkRenderEurope(b *testing.B) {
	f := getFixture(b)
	cache := render.NewSceneCache(render.Options{})
	if err := cache.WriteSVGCached(io.Discard, f.endMaps[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cache.WriteSVGCached(io.Discard, f.endMaps[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayoutEurope measures the cold layout cost (port assignment,
// label feasibility) amortized across topology changes.
func BenchmarkLayoutEurope(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := render.Layout(f.endMaps[0], render.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStep measures advancing the simulator one five-minute
// step on the Europe map (the generator's inner loop).
func BenchmarkSimulatorStep(b *testing.B) {
	f := getFixture(b)
	sim, err := netsim.New(f.sc)
	if err != nil {
		b.Fatal(err)
	}
	at := f.sc.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(5 * time.Minute)
		if _, err := sim.MapAt(wmap.Europe, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationImbalanceFilters quantifies the effect of the paper's
// Figure 5c filters: dropping 0 % and 1 % loads and singleton sets versus
// keeping everything. The filtered variant must report fewer, cleaner sets.
func BenchmarkAblationImbalanceFilters(b *testing.B) {
	f := getFixture(b)
	m := f.endMaps[0]
	for _, cfg := range []struct {
		name string
		opt  wmap.ImbalanceOptions
	}{
		{"paper-filters", wmap.PaperImbalanceOptions()},
		{"no-filters", wmap.ImbalanceOptions{MinLinks: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var sets int
			for i := 0; i < b.N; i++ {
				sets = len(m.Imbalances(cfg.opt))
			}
			b.ReportMetric(float64(sets), "sets")
		})
	}
}

// BenchmarkAblationAttributionSearch compares the grid-indexed
// closest-intersecting-box search (default) against the paper's literal
// exhaustive formulation, which tests every box against every link line.
// Results are identical (asserted by TestPrunedMatchesExhaustiveFullScale).
func BenchmarkAblationAttributionSearch(b *testing.B) {
	f := getFixture(b)
	for _, cfg := range []struct {
		name       string
		exhaustive bool
	}{
		{"grid-indexed", false},
		{"exhaustive", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := extract.DefaultOptions()
			opt.Exhaustive = cfg.exhaustive
			for i := 0; i < b.N; i++ {
				if _, err := extract.Attribute(f.europeRes, wmap.Europe, f.sc.End, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStreamVsDOM compares the streaming SVG reader against
// materializing the element list first — the memory/throughput trade
// DESIGN.md calls out.
func BenchmarkAblationStreamVsDOM(b *testing.B) {
	f := getFixture(b)
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(f.europeSVG)))
		for i := 0; i < b.N; i++ {
			n := 0
			err := svg.Stream(bytes.NewReader(f.europeSVG), func(svg.Element) error {
				n++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dom", func(b *testing.B) {
		b.SetBytes(int64(len(f.europeSVG)))
		for i := 0; i < b.N; i++ {
			elems, err := svg.Parse(bytes.NewReader(f.europeSVG))
			if err != nil {
				b.Fatal(err)
			}
			if len(elems) == 0 {
				b.Fatal("no elements")
			}
		}
	})
}

// BenchmarkAblationLexerVsStd compares the zero-allocation fast lexer
// against the encoding/xml decoder on the same Europe document — the
// tentpole speedup, isolated from Algorithm 1. Both variants run over
// in-memory bytes so the delta is pure parsing cost.
func BenchmarkAblationLexerVsStd(b *testing.B) {
	f := getFixture(b)
	count := func(e svg.Element) error { return nil }
	b.Run("fast-lexer", func(b *testing.B) {
		b.SetBytes(int64(len(f.europeSVG)))
		for i := 0; i < b.N; i++ {
			if err := svg.StreamBytes(f.europeSVG, count); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoding-xml", func(b *testing.B) {
		b.SetBytes(int64(len(f.europeSVG)))
		for i := 0; i < b.N; i++ {
			if err := svg.StreamStd(bytes.NewReader(f.europeSVG), count); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAttributionCache compares a cache hit (topology fingerprint
// match, loads spliced) against running Algorithm 2 — the steady-state
// saving on a timeline where consecutive snapshots share their topology.
func BenchmarkAttributionCache(b *testing.B) {
	f := getFixture(b)
	b.Run("hit", func(b *testing.B) {
		cache := extract.NewAttributionCache(extract.DefaultOptions())
		if _, err := cache.Attribute(f.europeRes, wmap.Europe, f.sc.End); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Attribute(f.europeRes, wmap.Europe, f.sc.End); err != nil {
				b.Fatal(err)
			}
		}
		if cache.Hits() != b.N {
			b.Fatalf("hits = %d, want %d", cache.Hits(), b.N)
		}
	})
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extract.Attribute(f.europeRes, wmap.Europe, f.sc.End, extract.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLabelConsumption compares Algorithm 2 with and without
// the label-consumption rule (line 9). Disabling consumption must produce
// duplicate label assignments on parallel-link groups with shared label
// texts, which the consuming variant avoids by construction.
func BenchmarkAblationLabelConsumption(b *testing.B) {
	f := getFixture(b)
	b.Run("with-consumption", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extract.Attribute(f.europeRes, wmap.Europe, f.sc.End, extract.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-consumption", func(b *testing.B) {
		dups := 0
		for i := 0; i < b.N; i++ {
			dups = extract.CountDuplicateAssignments(f.europeRes)
		}
		b.ReportMetric(float64(dups), "dup-labels")
	})
}

// BenchmarkYAMLEncodeDecode measures the processed-file codec on a Europe
// snapshot.
func BenchmarkYAMLEncodeDecode(b *testing.B) {
	f := getFixture(b)
	data, err := extract.MarshalYAML(f.endMaps[0])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := extract.MarshalYAML(f.endMaps[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := extract.UnmarshalYAML(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// defaultPlan returns the paper's collection plan.
func defaultPlan() collect.Plan { return collect.DefaultPlan() }

// BenchmarkExtensionSiteGrowth measures the per-site growth study (paper §5
// future work) over the full two-year range at monthly sampling.
func BenchmarkExtensionSiteGrowth(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.SiteGrowthStudy(simStream(f.sc, f.sc.Start, f.sc.End, 30*24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Ranked) == 0 {
			b.Fatal("no sites")
		}
	}
}

// BenchmarkExtensionCongestion measures the persistent-congestion detector
// over two days of Europe snapshots.
func BenchmarkExtensionCongestion(b *testing.B) {
	f := getFixture(b)
	from := f.sc.Start.AddDate(0, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := analysis.CongestionStudy(simStream(f.sc, from, from.AddDate(0, 0, 2), 4*time.Hour), analysis.DefaultCongestionOptions())
		if err != nil {
			b.Fatal(err)
		}
		if v.Observations == 0 {
			b.Fatal("no observations")
		}
	}
}

// BenchmarkExtensionChurnDiff measures the snapshot diff on Europe-scale
// topologies.
func BenchmarkExtensionChurnDiff(b *testing.B) {
	f := getFixture(b)
	old := f.endMaps[0]
	next := old.Clone()
	next.Nodes = append(next.Nodes, wmap.Node{Name: "new-r1", Kind: wmap.Router})
	next.Links = append(next.Links, wmap.Link{A: "new-r1", B: old.Routers()[0].Name, LabelA: "#1", LabelB: "#1"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := wmap.Compare(old, next)
		if len(d.NodesAdded) != 1 {
			b.Fatal("diff broken")
		}
	}
}

// removeYAMLs deletes every processed file so the next ProcessMap run
// starts from raw SVGs again.
func removeYAMLs(b *testing.B, root string) {
	b.Helper()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, "."+dataset.ExtYAML) {
			return os.Remove(path)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessMapParallel measures the SVG→YAML batch conversion at
// several worker-pool sizes over the same synthetic dataset — the headline
// number for the paper's 695k-snapshot processing run. workers=1 is the
// sequential baseline the parallel variants are compared against.
func BenchmarkProcessMapParallel(b *testing.B) {
	f := getFixture(b)
	const snapshots = 24
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			store, err := dataset.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < snapshots; i++ {
				at := f.sc.Start.Add(time.Duration(i) * 5 * time.Minute)
				if err := store.WriteSnapshot(wmap.Europe, at, dataset.ExtSVG, f.europeSVG); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(snapshots * len(f.europeSVG)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				removeYAMLs(b, store.Root())
				b.StartTimer()
				rep, err := store.ProcessMapParallel(context.Background(), wmap.Europe, dataset.ProcessOptions{
					Workers: workers,
					Extract: extract.DefaultOptions(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Processed != snapshots || rep.Failed() != 0 {
					b.Fatalf("report = %+v", rep)
				}
			}
		})
	}
}

// BenchmarkWalkMapsParallel measures the chronological fold over processed
// snapshots at several decoding worker counts — the read side every figure
// regeneration pays, reorder buffer included.
func BenchmarkWalkMapsParallel(b *testing.B) {
	f := getFixture(b)
	const snapshots = 64
	store, err := dataset.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	data, err := extract.MarshalYAML(f.endMaps[0])
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < snapshots; i++ {
		at := f.sc.Start.Add(time.Duration(i) * 5 * time.Minute)
		if err := store.WriteSnapshot(wmap.Europe, at, dataset.ExtYAML, data); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(snapshots * len(data)))
			for i := 0; i < b.N; i++ {
				n := 0
				err := store.WalkMapsParallel(context.Background(), wmap.Europe, workers, func(m *wmap.Map) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != snapshots {
					b.Fatalf("walked %d", n)
				}
			}
		})
	}
}

// BenchmarkExtensionMaintenanceCorrelation measures the status-feed
// correlation of the Discussion-section augmentation.
func BenchmarkExtensionMaintenanceCorrelation(b *testing.B) {
	f := getFixture(b)
	infra, err := analysis.Infrastructure(simStream(f.sc, f.sc.Start, f.sc.End, 7*24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	feed := status.FromScenario(f.sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corr := analysis.CorrelateMaintenance(infra, feed, 3, 8*24*time.Hour)
		if corr.Explained == 0 {
			b.Fatal("nothing explained")
		}
	}
}
