package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ovhweather/internal/analysis"
	"ovhweather/internal/collect"
	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/netsim"
	"ovhweather/internal/render"
	"ovhweather/internal/wmap"
)

// TestPipelineEndToEnd drives the whole system the way the commands do:
// generate six hours of snapshots for all four maps (healthy plus one
// deliberately corrupted file), process them into YAML with the paper's
// error accounting, then run the analyses off the on-disk dataset and check
// they agree with the simulator ground truth.
func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	sc := netsim.DefaultScenario()
	sim, err := netsim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := render.NewSceneCache(render.Options{})

	// Generate: 6 hours at 5-minute steps, all maps.
	from := sc.Start.AddDate(0, 2, 0)
	steps := 0
	for at := from; at.Before(from.Add(6 * time.Hour)); at = at.Add(5 * time.Minute) {
		for _, id := range wmap.AllMaps() {
			m, err := sim.MapAt(id, at)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := cache.WriteSVGCached(&sb, m); err != nil {
				t.Fatal(err)
			}
			if err := store.WriteSnapshot(id, at, dataset.ExtSVG, []byte(sb.String())); err != nil {
				t.Fatal(err)
			}
		}
		steps++
	}
	// One corrupted Europe file, as wmgen -faults would produce.
	badAt := from.Add(6 * time.Hour)
	{
		m, err := sim.MapAt(wmap.Europe, badAt)
		if err != nil {
			t.Fatal(err)
		}
		scn, err := cache.Scene(m)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := render.WriteFaultySVG(&sb, scn, m, render.FaultMalformedAttribute); err != nil {
			t.Fatal(err)
		}
		if err := store.WriteSnapshot(wmap.Europe, badAt, dataset.ExtSVG, []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}

	// Process: every map, with failure accounting. Alternate between the
	// sequential and the worker-pool entry points — their reports must be
	// interchangeable.
	for i, id := range wmap.AllMaps() {
		var rep dataset.ProcessReport
		var err error
		if i%2 == 0 {
			rep, err = store.ProcessMap(id, extract.DefaultOptions(), nil)
		} else {
			rep, err = store.ProcessMapParallel(context.Background(), id, dataset.ProcessOptions{
				Workers: 4,
				Extract: extract.DefaultOptions(),
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		wantFail := 0
		if id == wmap.Europe {
			wantFail = 1
		}
		if rep.Failed() != wantFail || rep.ScanFail != wantFail {
			t.Fatalf("%s: report = %+v, want %d scan failure(s)", id, rep, wantFail)
		}
		if rep.Processed != steps {
			t.Fatalf("%s: processed = %d, want %d", id, rep.Processed, steps)
		}
	}

	// Table 2 accounting matches what was written.
	sum, err := store.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if got := sum[wmap.Europe][dataset.ExtSVG].Files; got != steps+1 {
		t.Errorf("europe SVG files = %d, want %d", got, steps+1)
	}
	if got := sum[wmap.Europe][dataset.ExtYAML].Files; got != steps {
		t.Errorf("europe YAML files = %d, want %d", got, steps)
	}
	if sum[wmap.Europe][dataset.ExtYAML].Bytes >= sum[wmap.Europe][dataset.ExtSVG].Bytes {
		t.Error("YAML should be much smaller than SVG, as in the paper's Table 2")
	}

	// Coverage: a single uninterrupted segment per map.
	cov, err := store.CoverageOf(wmap.World, dataset.ExtSVG)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Segments) != 1 || cov.Count != steps {
		t.Errorf("world coverage = %+v", cov)
	}

	// Dataset-backed analysis agrees with simulator ground truth; the
	// parallel walk must feed the analysis exactly like WalkMaps would.
	dsStream := func(yield func(*wmap.Map) error) error {
		return store.WalkMapsParallel(context.Background(), wmap.Europe, 4, yield)
	}
	loads, err := analysis.LoadCDF(dsStream)
	if err != nil {
		t.Fatal(err)
	}
	simStream := func(yield func(*wmap.Map) error) error {
		sim2, err := netsim.New(sc)
		if err != nil {
			return err
		}
		for at := from; at.Before(from.Add(6 * time.Hour)); at = at.Add(5 * time.Minute) {
			m, err := sim2.MapAt(wmap.Europe, at)
			if err != nil {
				return err
			}
			if err := yield(m); err != nil {
				return err
			}
		}
		return nil
	}
	truth, err := analysis.LoadCDF(simStream)
	if err != nil {
		t.Fatal(err)
	}
	if loads.Samples != truth.Samples {
		t.Fatalf("dataset samples = %d, truth %d", loads.Samples, truth.Samples)
	}
	if loads.P75All != truth.P75All || loads.MeanInternal != truth.MeanInternal {
		t.Errorf("dataset analysis diverges from ground truth: p75 %.2f vs %.2f, mean %.2f vs %.2f",
			loads.P75All, truth.P75All, loads.MeanInternal, truth.MeanInternal)
	}
}

// TestCollectorPipelineMatchesGenerator checks that a collector-driven
// campaign (through HTTP) produces byte-identical snapshots to direct
// generation — the two acquisition paths must be interchangeable.
func TestCollectorPipelineMatchesGenerator(t *testing.T) {
	if testing.Short() {
		t.Skip("collector pipeline in -short mode")
	}
	sc := netsim.DefaultScenario()

	// Path A: direct generation.
	simA, err := netsim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	cache := render.NewSceneCache(render.Options{})
	at := sc.Start.Add(90 * time.Minute)
	mA, err := simA.MapAt(wmap.AsiaPacific, at)
	if err != nil {
		t.Fatal(err)
	}
	var direct strings.Builder
	if err := cache.WriteSVGCached(&direct, mA); err != nil {
		t.Fatal(err)
	}

	// Path B: served and collected over HTTP.
	simB, err := netsim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv := collect.NewServer(simB, []wmap.MapID{wmap.AsiaPacific})
	if err := srv.SetTime(at); err != nil {
		t.Fatal(err)
	}
	req := newLocalRequest(t, srv, "/map/asia-pacific.svg")
	if req != direct.String() {
		t.Error("collector path and generator path produced different snapshots")
	}
}

// newLocalRequest performs an in-process request against the handler.
func newLocalRequest(t *testing.T, srv *collect.Server, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, rec.Code)
	}
	return rec.Body.String()
}
