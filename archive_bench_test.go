// Benchmarks for the columnar tsdb archive against the YAML corpus it
// replaces: full-corpus fold speed, indexed range-query latency, and the
// on-disk size ratio. Run with:
//
//	go test -run xxx -bench 'BenchmarkFoldCorpus|BenchmarkArchive' -benchmem .
package main

import (
	"bytes"
	"context"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/netsim"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// archiveFixture is a 7-day, 5-minute Europe corpus (2017 snapshots)
// materialized both ways: as the on-disk YAML store the analyses walked
// before this archive existed, and as one tsdb archive held in memory.
type archiveFixture struct {
	store     *dataset.Store
	dir       string
	archive   []byte
	rd        *tsdb.Reader
	from, to  time.Time
	snapshots int
	yamlBytes int64
}

var (
	archOnce sync.Once
	arch     archiveFixture
)

func getArchiveFixture(b *testing.B) *archiveFixture {
	b.Helper()
	archOnce.Do(func() {
		sc := netsim.DefaultScenario()
		sim, err := netsim.New(sc)
		if err != nil {
			panic(err)
		}
		// The benchmark binary leaves the corpus in the OS temp dir; it is
		// rebuilt per run and small (a few thousand YAML files).
		arch.dir, err = os.MkdirTemp("", "wmbench-corpus-")
		if err != nil {
			panic(err)
		}
		arch.store, err = dataset.Open(arch.dir)
		if err != nil {
			panic(err)
		}
		arch.from = sc.Start.AddDate(0, 2, 0)
		arch.to = arch.from.AddDate(0, 0, 7)
		var buf bytes.Buffer
		w := tsdb.NewWriter(&buf)
		for at := arch.from; !at.After(arch.to); at = at.Add(5 * time.Minute) {
			m, err := sim.MapAt(wmap.Europe, at)
			if err != nil {
				panic(err)
			}
			out, err := extract.MarshalYAML(m)
			if err != nil {
				panic(err)
			}
			if err := arch.store.WriteSnapshot(wmap.Europe, at, dataset.ExtYAML, out); err != nil {
				panic(err)
			}
			arch.yamlBytes += int64(len(out))
			if err := w.Append(m); err != nil {
				panic(err)
			}
			arch.snapshots++
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		arch.archive = buf.Bytes()
		arch.rd, err = tsdb.NewReader(bytes.NewReader(arch.archive), int64(len(arch.archive)))
		if err != nil {
			panic(err)
		}
	})
	return &arch
}

// foldLoads is the measured work: visit every snapshot in order and sum the
// per-direction loads — the access pattern of every Figure 4-6 analysis.
func foldLoads(m *wmap.Map, sum *int64, n *int64) {
	for _, l := range m.Links {
		*sum += int64(l.LoadAB) + int64(l.LoadBA)
	}
	*n++
}

// BenchmarkFoldCorpus folds the 7-day corpus once per iteration, comparing
// the parallel YAML walk against a single-goroutine archive cursor.
func BenchmarkFoldCorpus(b *testing.B) {
	f := getArchiveFixture(b)
	b.Logf("corpus: %d snapshots; YAML %d bytes in %d files, archive %d bytes (%.1fx smaller)",
		f.snapshots, f.yamlBytes, f.snapshots, len(f.archive),
		float64(f.yamlBytes)/float64(len(f.archive)))

	b.Run("yaml-walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum, n int64
			err := f.store.WalkMapsParallel(context.Background(), wmap.Europe, 0, func(m *wmap.Map) error {
				foldLoads(m, &sum, &n)
				return nil
			})
			if err != nil || n != int64(f.snapshots) {
				b.Fatalf("walk: %d snapshots, err %v", n, err)
			}
		}
	})
	b.Run("tsdb-cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum, n int64
			cur := f.rd.Cursor(wmap.Europe, time.Time{}, time.Time{})
			for cur.Next() {
				foldLoads(cur.Map(), &sum, &n)
			}
			if err := cur.Err(); err != nil || n != int64(f.snapshots) {
				b.Fatalf("cursor: %d snapshots, err %v", n, err)
			}
		}
	})
	// The PR 4 fold path: parallel read-ahead decode over the decoded-block
	// cache, folding through the allocation-free scratch view. The first
	// iteration decodes and fills the cache; steady state (a dashboard
	// re-folding hot history) never decodes and never clones.
	b.Run("tsdb-parallel", func(b *testing.B) {
		rd, err := tsdb.NewReader(bytes.NewReader(f.archive), int64(len(f.archive)))
		if err != nil {
			b.Fatal(err)
		}
		rd.SetBlockCache(tsdb.NewBlockCache(tsdb.DefaultBlockCacheBytes))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sum, n int64
			cur := rd.CursorParallel(context.Background(), wmap.Europe, time.Time{}, time.Time{}, runtime.GOMAXPROCS(0))
			for cur.Next() {
				foldLoads(cur.MapView(), &sum, &n)
			}
			cur.Close()
			if err := cur.Err(); err != nil || n != int64(f.snapshots) {
				b.Fatalf("parallel cursor: %d snapshots, err %v", n, err)
			}
		}
	})
}

// BenchmarkArchiveRangeQuery measures the indexed seek the footer exists
// for: extract one hour (12 snapshots) out of the 7-day archive, rotating
// the window so successive iterations hit different blocks.
func BenchmarkArchiveRangeQuery(b *testing.B) {
	f := getArchiveFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		from := f.from.Add(time.Duration(i%160) * time.Hour)
		var n int
		cur := f.rd.Cursor(wmap.Europe, from, from.Add(55*time.Minute))
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil || n != 12 {
			b.Fatalf("window at %s: %d snapshots, err %v", from, n, err)
		}
	}
}

// BenchmarkArchiveLinkSeries measures a single-link, full-range load query —
// the /api/v1/links/{id}/load path, which decodes two columns per block and
// skips the rest.
func BenchmarkArchiveLinkSeries(b *testing.B) {
	f := getArchiveFixture(b)
	m, err := f.rd.SnapshotAt(wmap.Europe, f.to)
	if err != nil {
		b.Fatal(err)
	}
	key := tsdb.LinkKeysOf(m)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ab, ba, err := f.rd.LinkSeries(wmap.Europe, key, time.Time{}, time.Time{})
		if err != nil || ab.Len() == 0 || ba.Len() == 0 {
			b.Fatalf("series lengths %d, %d, err %v", ab.Len(), ba.Len(), err)
		}
	}
}

// BenchmarkArchiveAppend measures the write path: one snapshot appended to
// an in-memory archive, amortized over a full 512-point block cycle.
func BenchmarkArchiveAppend(b *testing.B) {
	f := getArchiveFixture(b)
	var maps []*wmap.Map
	cur := f.rd.Cursor(wmap.Europe, time.Time{}, time.Time{})
	for cur.Next() {
		maps = append(maps, cur.Map())
	}
	if err := cur.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := tsdb.NewWriter(&buf)
		for _, m := range maps {
			if err := w.Append(m); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(maps)), "snapshots/op")
}
