module ovhweather

go 1.22
