package main

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ovhweather/internal/analysis"
	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/netsim"
	"ovhweather/internal/render"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// TestArchiveEquivalence proves the columnar archive is a faithful stand-in
// for the YAML corpus: render the 4-map corpus, build one archive through
// the processing pipeline's Emit hook (the wmparse -archive path) and one
// from the on-disk YAMLs (Store.ArchiveTo), and require
//
//   - the two archives are byte-identical (the writer is deterministic and
//     both sources deliver the same series),
//   - every snapshot read back through a Cursor equals its YAML counterpart
//     structurally,
//   - the paper's analyses produce byte-identical rendered output from
//     either source, and
//   - the archive is at least 5x smaller than the YAML corpus.
func TestArchiveEquivalence(t *testing.T) {
	sc := netsim.DefaultScenario()
	sim, err := netsim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := render.NewSceneCache(render.Options{})

	// Render: 6 hours at 5-minute steps, all maps, plus one corrupted Europe
	// file the pipeline must reject without emitting.
	from := sc.Start.AddDate(0, 2, 0)
	steps := 0
	for at := from; at.Before(from.Add(6 * time.Hour)); at = at.Add(5 * time.Minute) {
		for _, id := range wmap.AllMaps() {
			m, err := sim.MapAt(id, at)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := cache.WriteSVGCached(&sb, m); err != nil {
				t.Fatal(err)
			}
			if err := store.WriteSnapshot(id, at, dataset.ExtSVG, []byte(sb.String())); err != nil {
				t.Fatal(err)
			}
		}
		steps++
	}
	badAt := from.Add(6 * time.Hour)
	{
		m, err := sim.MapAt(wmap.Europe, badAt)
		if err != nil {
			t.Fatal(err)
		}
		scn, err := cache.Scene(m)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := render.WriteFaultySVG(&sb, scn, m, render.FaultMalformedAttribute); err != nil {
			t.Fatal(err)
		}
		if err := store.WriteSnapshot(wmap.Europe, badAt, dataset.ExtSVG, []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}

	// Path A: process with the Emit hook feeding a writer, as wmparse
	// -archive does.
	var bufA bytes.Buffer
	wA := tsdb.NewWriter(&bufA)
	for _, id := range wmap.AllMaps() {
		rep, err := store.ProcessMapParallel(context.Background(), id, dataset.ProcessOptions{
			Workers: 4,
			Extract: extract.DefaultOptions(),
			Emit:    wA.Append,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Processed != steps {
			t.Fatalf("%s: processed = %d, want %d", id, rep.Processed, steps)
		}
	}
	if err := wA.Close(); err != nil {
		t.Fatal(err)
	}
	if got := wA.Stats().Snapshots; got != steps*len(wmap.AllMaps()) {
		t.Fatalf("archive snapshots = %d, want %d (the corrupted file must not be emitted)",
			got, steps*len(wmap.AllMaps()))
	}

	// Path B: re-archive the on-disk YAML corpus.
	var bufB bytes.Buffer
	wB := tsdb.NewWriter(&bufB)
	if err := store.ArchiveTo(context.Background(), wmap.AllMaps(), 4, wB.Append); err != nil {
		t.Fatal(err)
	}
	if err := wB.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("Emit-built and ArchiveTo-built archives differ: %d vs %d bytes",
			bufA.Len(), bufB.Len())
	}

	rd, err := tsdb.NewReader(bytes.NewReader(bufA.Bytes()), int64(bufA.Len()))
	if err != nil {
		t.Fatal(err)
	}

	// Every snapshot read back through a Cursor must equal its YAML
	// counterpart structurally.
	for _, id := range wmap.AllMaps() {
		var fromYAML []*wmap.Map
		if err := store.WalkMaps(id, func(m *wmap.Map) error {
			fromYAML = append(fromYAML, m)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		cur := rd.Cursor(id, time.Time{}, time.Time{})
		i := 0
		for cur.Next() {
			if i >= len(fromYAML) {
				t.Fatalf("%s: archive yields more than %d snapshots", id, len(fromYAML))
			}
			got, want := cur.Map(), fromYAML[i]
			if got.ID != want.ID || !got.Time.Equal(want.Time) {
				t.Fatalf("%s[%d]: identity %s@%s, want %s@%s",
					id, i, got.ID, got.Time, want.ID, want.Time)
			}
			if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Links, want.Links) {
				t.Fatalf("%s[%d]: topology or loads diverge from the YAML snapshot", id, i)
			}
			i++
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(fromYAML) {
			t.Fatalf("%s: archive yields %d snapshots, YAML walk %d", id, i, len(fromYAML))
		}
	}

	// The analyses must render byte-identical output from either source.
	yamlStream := func(yield func(*wmap.Map) error) error {
		return store.WalkMapsParallel(context.Background(), wmap.Europe, 4, yield)
	}
	tsdbStream := func(yield func(*wmap.Map) error) error {
		cur := rd.Cursor(wmap.Europe, time.Time{}, time.Time{})
		for cur.Next() {
			if err := yield(cur.Map()); err != nil {
				return err
			}
		}
		return cur.Err()
	}
	// The serving-path variant: parallel read-ahead decode over a shared
	// decoded-block cache, yielding the allocation-free scratch view. Must
	// be indistinguishable from the sequential cursor — same snapshots,
	// same order, byte-identical analyses.
	cachedRd, err := tsdb.NewReader(bytes.NewReader(bufA.Bytes()), int64(bufA.Len()))
	if err != nil {
		t.Fatal(err)
	}
	cachedRd.SetBlockCache(tsdb.NewBlockCache(tsdb.DefaultBlockCacheBytes))
	tsdbParallelStream := func(yield func(*wmap.Map) error) error {
		cur := cachedRd.CursorParallel(context.Background(), wmap.Europe, time.Time{}, time.Time{}, 4)
		defer cur.Close()
		for cur.Next() {
			if err := yield(cur.MapView()); err != nil {
				return err
			}
		}
		return cur.Err()
	}
	renderAnalyses := func(stream analysis.Stream) string {
		var sb strings.Builder
		loads, err := analysis.LoadCDF(stream)
		if err != nil {
			t.Fatal(err)
		}
		analysis.WriteLoadCDF(&sb, loads)
		imb, err := analysis.ImbalanceCDF(stream, wmap.PaperImbalanceOptions())
		if err != nil {
			t.Fatal(err)
		}
		analysis.WriteImbalance(&sb, imb)
		infra, err := analysis.Infrastructure(stream)
		if err != nil {
			t.Fatal(err)
		}
		analysis.WriteInfraSeries(&sb, infra, time.Hour)
		return sb.String()
	}
	want := renderAnalyses(yamlStream)
	if got := renderAnalyses(tsdbStream); got != want {
		t.Errorf("analysis output diverges between tsdb and YAML paths:\n--- tsdb ---\n%s\n--- yaml ---\n%s", got, want)
	}
	// Twice through the parallel cached stream: the first pass fills the
	// cache, the second serves from it — both must render identically.
	for pass := 1; pass <= 2; pass++ {
		if got := renderAnalyses(tsdbParallelStream); got != want {
			t.Errorf("parallel cached cursor (pass %d) diverges from the YAML analyses:\n--- parallel ---\n%s\n--- yaml ---\n%s", pass, got, want)
		}
	}
	if s := cachedRd.BlockCache().Stats(); s.Hits == 0 {
		t.Errorf("second parallel pass recorded no cache hits: %+v", s)
	}

	// Size: the columnar archive must be at least 5x smaller than the YAML
	// corpus it replaces.
	sum, err := store.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	var yamlBytes int64
	for _, id := range wmap.AllMaps() {
		yamlBytes += sum[id][dataset.ExtYAML].Bytes
	}
	if int64(bufA.Len())*5 > yamlBytes {
		t.Errorf("archive = %d bytes, YAML corpus = %d bytes: want >= 5x smaller", bufA.Len(), yamlBytes)
	}
}
