package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ovhweather/internal/analysis"
	"ovhweather/internal/dataset"
	"ovhweather/internal/extract"
	"ovhweather/internal/netsim"
	"ovhweather/internal/render"
	"ovhweather/internal/tsdb"
	"ovhweather/internal/wmap"
)

// TestArchiveEquivalence proves the columnar archive is a faithful stand-in
// for the YAML corpus: render the 4-map corpus, build one archive through
// the processing pipeline's Emit hook (the wmparse -archive path) and one
// from the on-disk YAMLs (Store.ArchiveTo), and require
//
//   - the two archives are byte-identical (the writer is deterministic and
//     both sources deliver the same series),
//   - every snapshot read back through a Cursor equals its YAML counterpart
//     structurally,
//   - the paper's analyses produce byte-identical rendered output from
//     either source, and
//   - the archive is at least 5x smaller than the YAML corpus.
func TestArchiveEquivalence(t *testing.T) {
	sc := netsim.DefaultScenario()
	sim, err := netsim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := render.NewSceneCache(render.Options{})

	// Render: 6 hours at 5-minute steps, all maps, plus one corrupted Europe
	// file the pipeline must reject without emitting.
	from := sc.Start.AddDate(0, 2, 0)
	steps := 0
	for at := from; at.Before(from.Add(6 * time.Hour)); at = at.Add(5 * time.Minute) {
		for _, id := range wmap.AllMaps() {
			m, err := sim.MapAt(id, at)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := cache.WriteSVGCached(&sb, m); err != nil {
				t.Fatal(err)
			}
			if err := store.WriteSnapshot(id, at, dataset.ExtSVG, []byte(sb.String())); err != nil {
				t.Fatal(err)
			}
		}
		steps++
	}
	badAt := from.Add(6 * time.Hour)
	{
		m, err := sim.MapAt(wmap.Europe, badAt)
		if err != nil {
			t.Fatal(err)
		}
		scn, err := cache.Scene(m)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := render.WriteFaultySVG(&sb, scn, m, render.FaultMalformedAttribute); err != nil {
			t.Fatal(err)
		}
		if err := store.WriteSnapshot(wmap.Europe, badAt, dataset.ExtSVG, []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}

	// Path A: process with the Emit hook feeding a writer, as wmparse
	// -archive does.
	var bufA bytes.Buffer
	wA := tsdb.NewWriter(&bufA)
	for _, id := range wmap.AllMaps() {
		rep, err := store.ProcessMapParallel(context.Background(), id, dataset.ProcessOptions{
			Workers: 4,
			Extract: extract.DefaultOptions(),
			Emit:    wA.Append,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Processed != steps {
			t.Fatalf("%s: processed = %d, want %d", id, rep.Processed, steps)
		}
	}
	if err := wA.Close(); err != nil {
		t.Fatal(err)
	}
	if got := wA.Stats().Snapshots; got != steps*len(wmap.AllMaps()) {
		t.Fatalf("archive snapshots = %d, want %d (the corrupted file must not be emitted)",
			got, steps*len(wmap.AllMaps()))
	}

	// Path B: re-archive the on-disk YAML corpus.
	var bufB bytes.Buffer
	wB := tsdb.NewWriter(&bufB)
	if err := store.ArchiveTo(context.Background(), wmap.AllMaps(), 4, wB.Append); err != nil {
		t.Fatal(err)
	}
	if err := wB.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("Emit-built and ArchiveTo-built archives differ: %d vs %d bytes",
			bufA.Len(), bufB.Len())
	}

	rd, err := tsdb.NewReader(bytes.NewReader(bufA.Bytes()), int64(bufA.Len()))
	if err != nil {
		t.Fatal(err)
	}

	// Every snapshot read back through a Cursor must equal its YAML
	// counterpart structurally.
	for _, id := range wmap.AllMaps() {
		var fromYAML []*wmap.Map
		if err := store.WalkMaps(id, func(m *wmap.Map) error {
			fromYAML = append(fromYAML, m)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		cur := rd.Cursor(id, time.Time{}, time.Time{})
		i := 0
		for cur.Next() {
			if i >= len(fromYAML) {
				t.Fatalf("%s: archive yields more than %d snapshots", id, len(fromYAML))
			}
			got, want := cur.Map(), fromYAML[i]
			if got.ID != want.ID || !got.Time.Equal(want.Time) {
				t.Fatalf("%s[%d]: identity %s@%s, want %s@%s",
					id, i, got.ID, got.Time, want.ID, want.Time)
			}
			if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Links, want.Links) {
				t.Fatalf("%s[%d]: topology or loads diverge from the YAML snapshot", id, i)
			}
			i++
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(fromYAML) {
			t.Fatalf("%s: archive yields %d snapshots, YAML walk %d", id, i, len(fromYAML))
		}
	}

	// The analyses must render byte-identical output from either source.
	yamlStream := func(yield func(*wmap.Map) error) error {
		return store.WalkMapsParallel(context.Background(), wmap.Europe, 4, yield)
	}
	tsdbStream := func(yield func(*wmap.Map) error) error {
		cur := rd.Cursor(wmap.Europe, time.Time{}, time.Time{})
		for cur.Next() {
			if err := yield(cur.Map()); err != nil {
				return err
			}
		}
		return cur.Err()
	}
	// The serving-path variant: parallel read-ahead decode over a shared
	// decoded-block cache, yielding the allocation-free scratch view. Must
	// be indistinguishable from the sequential cursor — same snapshots,
	// same order, byte-identical analyses.
	cachedRd, err := tsdb.NewReader(bytes.NewReader(bufA.Bytes()), int64(bufA.Len()))
	if err != nil {
		t.Fatal(err)
	}
	cachedRd.SetBlockCache(tsdb.NewBlockCache(tsdb.DefaultBlockCacheBytes))
	tsdbParallelStream := func(yield func(*wmap.Map) error) error {
		cur := cachedRd.CursorParallel(context.Background(), wmap.Europe, time.Time{}, time.Time{}, 4)
		defer cur.Close()
		for cur.Next() {
			if err := yield(cur.MapView()); err != nil {
				return err
			}
		}
		return cur.Err()
	}
	want := renderAnalyses(t, yamlStream)
	if got := renderAnalyses(t, tsdbStream); got != want {
		t.Errorf("analysis output diverges between tsdb and YAML paths:\n--- tsdb ---\n%s\n--- yaml ---\n%s", got, want)
	}
	// Twice through the parallel cached stream: the first pass fills the
	// cache, the second serves from it — both must render identically.
	for pass := 1; pass <= 2; pass++ {
		if got := renderAnalyses(t, tsdbParallelStream); got != want {
			t.Errorf("parallel cached cursor (pass %d) diverges from the YAML analyses:\n--- parallel ---\n%s\n--- yaml ---\n%s", pass, got, want)
		}
	}
	if s := cachedRd.BlockCache().Stats(); s.Hits == 0 {
		t.Errorf("second parallel pass recorded no cache hits: %+v", s)
	}

	// Size: the columnar archive must be at least 5x smaller than the YAML
	// corpus it replaces.
	sum, err := store.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	var yamlBytes int64
	for _, id := range wmap.AllMaps() {
		yamlBytes += sum[id][dataset.ExtYAML].Bytes
	}
	if int64(bufA.Len())*5 > yamlBytes {
		t.Errorf("archive = %d bytes, YAML corpus = %d bytes: want >= 5x smaller", bufA.Len(), yamlBytes)
	}
}

// renderAnalyses runs the paper's Europe analyses over a snapshot stream
// and returns the rendered figures — the byte string the equivalence tests
// compare across ingest paths.
func renderAnalyses(t *testing.T, stream analysis.Stream) string {
	t.Helper()
	var sb strings.Builder
	loads, err := analysis.LoadCDF(stream)
	if err != nil {
		t.Fatal(err)
	}
	analysis.WriteLoadCDF(&sb, loads)
	imb, err := analysis.ImbalanceCDF(stream, wmap.PaperImbalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	analysis.WriteImbalance(&sb, imb)
	infra, err := analysis.Infrastructure(stream)
	if err != nil {
		t.Fatal(err)
	}
	analysis.WriteInfraSeries(&sb, infra, time.Hour)
	// The studies that now fold through the shared event-detector
	// primitives (events.ChurnTracker, EachDirection, UpgradeTracker):
	// their figures must stay byte-identical across every ingest path.
	churn, err := analysis.ChurnStudy(stream)
	if err != nil {
		t.Fatal(err)
	}
	analysis.WriteChurn(&sb, churn)
	cong, err := analysis.CongestionStudy(stream, analysis.DefaultCongestionOptions())
	if err != nil {
		t.Fatal(err)
	}
	analysis.WriteCongestion(&sb, cong)
	upg, err := analysis.UpgradeStudy(stream, "AMS-IX", nil)
	if err == nil {
		analysis.WriteUpgrade(&sb, upg)
	}
	return sb.String()
}

// TestLiveArchiveEquivalence proves follow mode costs nothing in output
// fidelity: snapshots landing in a dataset directory in stages, ingested by
// catch-up passes into an OpenAppend archive with a durable commit per
// stage (the wmparse -follow loop), must close into an archive
// byte-identical to the batch build of the same corpus — and the paper's
// figures rendered from it must be byte-identical to the YAML-stream
// figures. Along the way a live reader tails the archive over the query
// API, asserting each commit rolls the advertised fingerprint: a stale
// If-None-Match re-fetches with 200, the current one revalidates with 304.
func TestLiveArchiveEquivalence(t *testing.T) {
	const (
		stages     = 3
		stageSteps = 16 // one full block per stage, so commit points align
		blockPts   = 16 // with block boundaries and byte-identity can hold
	)
	sc := netsim.DefaultScenario()
	sim, err := netsim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scene := render.NewSceneCache(render.Options{})

	// Pre-render the whole corpus; the stage loop releases it into the
	// dataset directory piecewise, as a crawler would.
	type snap struct {
		at   time.Time
		data []byte
	}
	var snaps []snap
	from := sc.Start.AddDate(0, 2, 0)
	for i := 0; i < stages*stageSteps; i++ {
		at := from.Add(time.Duration(i) * 5 * time.Minute)
		m, err := sim.MapAt(wmap.Europe, at)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := scene.WriteSVGCached(&sb, m); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap{at, []byte(sb.String())})
	}

	archPath := filepath.Join(t.TempDir(), "live.tsdb")
	arch, err := tsdb.OpenAppend(archPath)
	if err != nil {
		t.Fatal(err)
	}
	arch.SetBlockPoints(blockPts)

	var (
		rd      *tsdb.Reader
		srv     *httptest.Server
		lastTag string
	)
	get := func(inm string) (status int, etag string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/maps", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("ETag")
	}

	for s := 0; s < stages; s++ {
		for _, sn := range snaps[s*stageSteps : (s+1)*stageSteps] {
			if err := store.WriteSnapshot(wmap.Europe, sn.at, dataset.ExtSVG, sn.data); err != nil {
				t.Fatal(err)
			}
		}
		// The catch-up pass, exactly as wmparse -follow runs it: emit from
		// the archived tail, then commit the cycle.
		popt := dataset.ProcessOptions{
			Workers: 4,
			Extract: extract.DefaultOptions(),
			Emit:    arch.Append,
		}
		if lt, ok := arch.LastTime(wmap.Europe); ok {
			popt.EmitFrom = lt
		}
		if _, err := store.ProcessMapParallel(context.Background(), wmap.Europe, popt); err != nil {
			t.Fatalf("stage %d: %v", s, err)
		}
		if err := arch.Sync(); err != nil {
			t.Fatalf("stage %d: %v", s, err)
		}

		// The tailing side: adopt the commit, verify coverage and the ETag
		// roll.
		if s == 0 {
			rd, err = tsdb.OpenFile(archPath)
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			srv = httptest.NewServer(tsdb.NewAPIHandler(rd))
			defer srv.Close()
		} else {
			changed, err := rd.Refresh()
			if err != nil || !changed {
				t.Fatalf("stage %d: Refresh changed=%v err=%v", s, changed, err)
			}
		}
		if got, want := rd.Snapshots(wmap.Europe), (s+1)*stageSteps; got != want {
			t.Fatalf("stage %d: reader covers %d snapshots, want %d", s, got, want)
		}
		status, tag := get("")
		if status != http.StatusOK || tag == "" {
			t.Fatalf("stage %d: GET maps: status %d etag %q", s, status, tag)
		}
		if status, _ := get(tag); status != http.StatusNotModified {
			t.Fatalf("stage %d: current tag revalidated with %d, want 304", s, status)
		}
		if s > 0 {
			if tag == lastTag {
				t.Fatalf("stage %d: ETag did not roll with the commit: %q", s, tag)
			}
			if status, _ := get(lastTag); status != http.StatusOK {
				t.Fatalf("stage %d: stale tag %q answered %d, want 200 with fresh data", s, lastTag, status)
			}
		}
		lastTag = tag
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	liveBytes, err := os.ReadFile(archPath)
	if err != nil {
		t.Fatal(err)
	}

	// Batch build of the now-complete corpus: byte-identical.
	var batch bytes.Buffer
	wB := tsdb.NewWriter(&batch)
	wB.SetBlockPoints(blockPts)
	if err := store.ArchiveTo(context.Background(), []wmap.MapID{wmap.Europe}, 4, wB.Append); err != nil {
		t.Fatal(err)
	}
	if err := wB.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveBytes, batch.Bytes()) {
		t.Fatalf("staged live archive differs from batch archive: %d vs %d bytes",
			len(liveBytes), batch.Len())
	}

	// And the figures from the closed live archive match the YAML stream
	// byte for byte.
	closed, err := tsdb.NewReader(bytes.NewReader(liveBytes), int64(len(liveBytes)))
	if err != nil {
		t.Fatal(err)
	}
	liveStream := func(yield func(*wmap.Map) error) error {
		cur := closed.Cursor(wmap.Europe, time.Time{}, time.Time{})
		for cur.Next() {
			if err := yield(cur.Map()); err != nil {
				return err
			}
		}
		return cur.Err()
	}
	yamlStream := func(yield func(*wmap.Map) error) error {
		return store.WalkMapsParallel(context.Background(), wmap.Europe, 4, yield)
	}
	if got, want := renderAnalyses(t, liveStream), renderAnalyses(t, yamlStream); got != want {
		t.Errorf("figures from the follow-mode archive diverge from the YAML analyses:\n--- live ---\n%s\n--- yaml ---\n%s", got, want)
	}
}
